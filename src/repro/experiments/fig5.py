"""Experiment E5 — Figure 5: co-simulated responses of all applications.

All applications are disturbed at ``t = 0`` (the paper's scenario) and
run over the FlexRay co-simulation with the TT-slot allocation computed
from the non-monotonic analysis.  The reproduction target: every
application returns below its threshold within its deadline, with the
TT/ET interval structure visible in the traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.control.disturbance import OneShotDisturbance
from repro.core.allocation import first_fit_allocation
from repro.experiments.casestudy import CaseStudyApplication
from repro.experiments.reporting import format_table
from repro.flexray.bus import FlexRayBus
from repro.flexray.frame import FrameSpec
from repro.flexray.params import FlexRayConfig, paper_bus_config
from repro.sim.cosim import (
    AnalyticNetwork,
    CoSimApplication,
    CoSimulator,
    FlexRayNetwork,
    NetworkModel,
)
from repro.sim.trace import SimulationTrace


@dataclass(frozen=True)
class Fig5Result:
    """Trace plus the allocation it ran under."""

    trace: SimulationTrace
    slot_names: List[List[str]]

    def all_deadlines_met(self) -> bool:
        return self.trace.all_deadlines_met()

    def report(self, plots: bool = False) -> str:
        rows = []
        for row in self.trace.summary_rows():
            rows.append(
                [
                    row["app"],
                    row["worst_response"] if row["worst_response"] is not None else "-",
                    row["deadline"],
                    row["deadline_met"],
                    len(row["tt_intervals"]),
                ]
            )
        table = format_table(
            ["app", "response [s]", "deadline [s]", "met", "TT episodes"], rows
        )
        out = [
            "Figure 5 — co-simulated disturbance rejection (all disturbances at t=0)",
            f"slot allocation: {self.slot_names}",
            table,
        ]
        if plots:
            for name in sorted(self.trace.apps):
                out.append("")
                out.append(self.trace[name].ascii_plot())
        return "\n".join(out)


def run_fig5(
    applications: Optional[List[CaseStudyApplication]] = None,
    bus_config: Optional[FlexRayConfig] = None,
    horizon: Optional[float] = None,
    use_flexray: bool = True,
    wait_step: int = 2,
    kernel: str = "auto",
) -> Fig5Result:
    """Run the Figure 5 co-simulation.

    Parameters
    ----------
    applications:
        Characterised case-study applications (defaults to the
        simulation-mode roster).
    bus_config:
        FlexRay geometry (defaults to the paper's 5 ms / 10-slot bus).
    horizon:
        Simulation length; defaults to 1.2x the largest deadline.
    use_flexray:
        ``True`` runs over the cycle-accurate bus; ``False`` uses the
        analytic worst-case network (faster, deterministic).
    kernel:
        Co-simulation kernel (``"auto"``, ``"batch"``, ``"event"`` or
        ``"legacy"``; traces are bitwise identical on this
        shared-period roster, so the default lets eligible runs take
        the batched fast path).
    """
    if applications is None:
        # Default roster: run the whole chain as the fig5 pipeline
        # scenario (shared dwell cache, structured stage artifacts).
        from repro.pipeline import BusSpec, DesignStudy, get_scenario

        scenario = get_scenario(
            "fig5-cosim" if use_flexray else "fig5-cosim-analytic"
        ).derive(
            wait_step=wait_step,
            horizon=horizon,
            kernel=kernel,
            bus=BusSpec.from_config(bus_config) if bus_config is not None else None,
        )
        study = DesignStudy(scenario).run().raise_for_failure()
        return Fig5Result(
            trace=study.attachments.trace,
            slot_names=study.attachments.allocation.slot_names,
        )
    allocation = first_fit_allocation(
        [app.analyzed("non-monotonic") for app in applications]
    )
    if horizon is None:
        horizon = 1.2 * max(app.params.deadline for app in applications)

    cosim_apps = []
    for index, case_app in enumerate(applications):
        slot = allocation.slot_of(case_app.name)
        cosim_apps.append(
            CoSimApplication(
                app=case_app.app,
                dynamics=case_app.plant.model,
                disturbance_state=case_app.plant.disturbance,
                disturbances=OneShotDisturbance(time=0.0),
                deadline=case_app.params.deadline,
                slot=slot,
                frame=FrameSpec(frame_id=index + 1, sender=case_app.name),
            )
        )
    network: NetworkModel
    if use_flexray:
        network = FlexRayNetwork(
            bus=FlexRayBus(config=bus_config or paper_bus_config())
        )
    else:
        network = AnalyticNetwork()
    simulator = CoSimulator(cosim_apps, network, kernel=kernel)
    trace = simulator.run(horizon)
    return Fig5Result(trace=trace, slot_names=allocation.slot_names)


__all__ = ["Fig5Result", "run_fig5"]
