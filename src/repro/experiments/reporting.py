"""ASCII reporting helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width ASCII table.

    Numeric cells are formatted with three decimals; everything else via
    ``str``.
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as an ASCII scatter plot."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0:
        return "(empty series)"
    x_span = max(float(xs.max() - xs.min()), 1e-12)
    y_top = max(float(ys.max()), 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - xs.min()) / x_span * (width - 1))
        row = height - 1 - int(min(y, y_top) / y_top * (height - 1))
        grid[row][col] = "*"
    header = f"{y_label} (max {y_top:.3g}) vs {x_label} [{xs.min():.3g}, {xs.max():.3g}]"
    return "\n".join([header] + ["".join(row) for row in grid])


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, np.floating):
        return f"{float(value):.3f}"
    return str(value)


__all__ = ["format_series", "format_table"]
