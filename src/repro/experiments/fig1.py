"""Figure 1 demonstration — the dynamic resource-allocation state machine.

The paper's Figure 1 is a scheme diagram, not a measurement; this driver
makes it executable.  Two applications share one TT slot; disturbances
are staggered so every transition of the scheme occurs and is logged:

* steady state over ET communication,
* ``||x|| > Eth`` -> TT request,
* immediate grant (slot free) vs waiting behind a busy slot,
* dwell on the slot, and
* release on return to the steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.control.controller import design_switched_application
from repro.control.disturbance import OneShotDisturbance
from repro.control.plants import dc_motor_speed, servo_rig
from repro.experiments.reporting import format_table
from repro.flexray.frame import FrameSpec
from repro.sim.cosim import AnalyticNetwork, CoSimApplication, CoSimulator
from repro.sim.runtime import CommState
from repro.sim.trace import SimulationTrace


@dataclass(frozen=True)
class Fig1Result:
    """Transition log of the Figure 1 scheme."""

    trace: SimulationTrace
    transitions: List[Tuple[float, str, str, str]]
    # (time, app, from-state, to-state)

    def saw_waiting(self) -> bool:
        """Whether some application had to wait for a busy slot."""
        return any(new == CommState.WAITING.value for *_ , new in self.transitions)

    def report(self) -> str:
        rows = [list(t) for t in self.transitions]
        return "Figure 1 — scheme transitions\n" + format_table(
            ["time [s]", "app", "from", "to"], rows
        )


def run_fig1(horizon: float = 4.0) -> Fig1Result:
    """Run the two-application demonstration and extract transitions."""
    specs = [
        ("servo", servo_rig(), 1, 5.0, 0.0),
        ("motor", dc_motor_speed(), 2, 6.0, 0.04),
    ]
    apps = []
    for name, plant, frame_id, deadline, disturbance_time in specs:
        switched = design_switched_application(
            name=name,
            plant=plant.model,
            period=plant.period,
            et_delay=plant.period,
            tt_delay=0.0007,
            q=plant.q,
            r=plant.r,
            threshold=plant.threshold,
        )
        apps.append(
            CoSimApplication(
                app=switched,
                dynamics=plant.model,
                disturbance_state=plant.disturbance,
                disturbances=OneShotDisturbance(time=disturbance_time),
                deadline=deadline,
                slot=0,
                frame=FrameSpec(frame_id=frame_id, sender=name),
            )
        )
    trace = CoSimulator(apps, AnalyticNetwork()).run(horizon)
    transitions: List[Tuple[float, str, str, str]] = []
    for name in sorted(trace.apps):
        app_trace = trace[name]
        previous = CommState.ET_STEADY
        for time, state in zip(app_trace.times, app_trace.states):
            if state is not previous:
                transitions.append((time, name, previous.value, state.value))
                previous = state
    transitions.sort(key=lambda t: (t[0], t[1]))
    return Fig1Result(trace=trace, transitions=transitions)


__all__ = ["Fig1Result", "run_fig1"]
