"""Experiment E4 — Section V slot allocation.

Paper mode: the Table I applications are packed with the first-fit
heuristic under both dwell-model shapes; the paper's result is **3 TT
slots** with the non-monotonic model against **5** with the conservative
monotonic one (+67 % communication resources).

Simulation mode: the same comparison on the six characterised plants,
plus the dedicated-slot baseline and the exhaustive optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.allocation import AllocationResult, compare_resource_usage
from repro.experiments.casestudy import CaseStudyApplication
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class AllocationComparison:
    """Slot counts under the different dwell models for one app set."""

    label: str
    non_monotonic: AllocationResult
    monotonic: AllocationResult
    dedicated: AllocationResult
    optimal: Optional[AllocationResult] = None

    @property
    def extra_resource_fraction(self) -> float:
        return compare_resource_usage(self.non_monotonic, self.monotonic)

    def rows(self) -> List[list]:
        rows = [
            ["non-monotonic (paper)", self.non_monotonic.slot_count,
             " | ".join(",".join(s) for s in self.non_monotonic.slot_names)],
            ["conservative monotonic", self.monotonic.slot_count,
             " | ".join(",".join(s) for s in self.monotonic.slot_names)],
            ["dedicated (1 slot/app)", self.dedicated.slot_count, "-"],
        ]
        if self.optimal is not None:
            rows.append(
                ["exhaustive optimum", self.optimal.slot_count,
                 " | ".join(",".join(s) for s in self.optimal.slot_names)]
            )
        return rows

    def report(self) -> str:
        table = format_table(["model", "TT slots", "slot contents"], self.rows())
        return (
            f"Slot allocation — {self.label}\n{table}\n"
            f"monotonic needs {100 * self.extra_resource_fraction:.0f}% more TT slots"
        )


def _comparison_scenarios(base, method: str):
    """The four scenario variants an :class:`AllocationComparison` needs.

    The dedicated/optimal baselines always use the closed-form analysis
    (mirroring the paper's Section V presentation).
    """
    return [
        base.derive(name=f"{base.name}/non-monotonic", method=method),
        base.derive(
            name=f"{base.name}/monotonic",
            method=method,
            dwell_shape="conservative-monotonic",
        ),
        base.derive(name=f"{base.name}/dedicated", allocator="dedicated"),
        base.derive(name=f"{base.name}/optimal", allocator="optimal"),
    ]


def run_paper_allocation(method: str = "closed-form") -> AllocationComparison:
    """Section V, verbatim: expect 3 vs 5 slots (+67 %).

    Runs four pipeline scenarios (both dwell-model shapes plus the
    dedicated and exhaustive-optimum baselines) through
    :func:`repro.pipeline.run_many`.
    """
    from repro.pipeline import get_scenario, run_many

    studies = run_many(_comparison_scenarios(get_scenario("paper-table1"), method))
    non_monotonic, monotonic, dedicated, optimal = (
        study.raise_for_failure().attachments.allocation for study in studies
    )
    return AllocationComparison(
        label="paper Table I",
        non_monotonic=non_monotonic,
        monotonic=monotonic,
        dedicated=dedicated,
        optimal=optimal,
    )


def run_simulation_allocation(
    applications: Optional[List[CaseStudyApplication]] = None,
    method: str = "closed-form",
    wait_step: int = 2,
) -> AllocationComparison:
    """The same comparison on the simulated plant roster.

    With the default roster this sweeps four ``sim-table1`` pipeline
    scenarios whose shared cache measures each dwell curve once; an
    explicit ``applications`` list is packed directly.
    """
    if applications is None:
        from repro.pipeline import get_scenario, run_many

        base = get_scenario("sim-table1").derive(wait_step=wait_step)
        studies = run_many(_comparison_scenarios(base, method))
        non_monotonic, monotonic, dedicated, optimal = (
            study.raise_for_failure().attachments.allocation for study in studies
        )
    else:
        from repro.solvers import allocate, get_allocator

        non_monotonic = allocate(
            "first-fit",
            [app.analyzed("non-monotonic") for app in applications],
            method=method,
        )
        monotonic = allocate(
            "first-fit",
            [app.analyzed("conservative-monotonic") for app in applications],
            method=method,
        )
        dedicated = allocate(
            "dedicated", [app.analyzed("non-monotonic") for app in applications]
        )
        # Exhaustive enumeration on toy rosters, branch-and-bound (the
        # same proven optimum, pruned) once past its practical ceiling.
        exhaustive_limit = get_allocator("optimal").max_apps or 10
        exact_backend = (
            "optimal" if len(applications) <= exhaustive_limit else "branch-and-bound"
        )
        optimal = allocate(
            exact_backend, [app.analyzed("non-monotonic") for app in applications]
        )
    return AllocationComparison(
        label="simulated plants",
        non_monotonic=non_monotonic,
        monotonic=monotonic,
        dedicated=dedicated,
        optimal=optimal,
    )


__all__ = [
    "AllocationComparison",
    "run_paper_allocation",
    "run_simulation_allocation",
]
