"""Ablation experiments (E6-E8) for DESIGN.md's design decisions.

* E6 — number of PWL segments: two-segment (paper) vs the concave
  envelope (the "three or more" extension of Section III) vs the
  monotonic line, measured by slot count and dwell-bound tightness;
* E7 — closed-form wait bound (Eq. 20) vs exact fixed point (Eq. 5):
  pessimism gap on randomised application sets;
* E8 — steady-state threshold sweep on the servo testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allocation import first_fit_allocation
from repro.core.pwl import (
    fit_concave_envelope,
    fit_conservative_monotonic,
    fit_two_segment,
)
from repro.core.schedulability import (
    AnalyzedApplication,
    analyze_application,
)
from repro.core.timing_params import TimingParameters
from repro.experiments.casestudy import CaseStudyApplication, simulation_applications
from repro.experiments.reporting import format_table
from repro.testbed.servo import ServoRigConfig, default_servo_testbed


# ---------------------------------------------------------------------------
# E6 — PWL segment count
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentAblationResult:
    """Slot counts and dwell-bound tightness per model family."""

    slot_counts: Dict[str, int]
    mean_dwell_bounds: Dict[str, float]

    def report(self) -> str:
        rows = [
            [label, self.slot_counts[label], self.mean_dwell_bounds[label]]
            for label in self.slot_counts
        ]
        return "PWL segment ablation\n" + format_table(
            ["model", "TT slots", "mean dwell bound [s]"], rows
        )


def run_segment_ablation(
    applications: Optional[List[CaseStudyApplication]] = None,
    wait_step: int = 2,
) -> SegmentAblationResult:
    """E6: richer PWL models never need more slots than coarser ones."""
    if applications is None:
        applications = simulation_applications(wait_step=wait_step)
    fits = {
        "conservative-monotonic": fit_conservative_monotonic,
        "two-segment": fit_two_segment,
        "concave-envelope": fit_concave_envelope,
    }
    slot_counts: Dict[str, int] = {}
    mean_bounds: Dict[str, float] = {}
    for label, fit in fits.items():
        analyzed = []
        bounds = []
        for case_app in applications:
            curve = case_app.characterization.curve
            model = fit(curve)
            analyzed.append(
                AnalyzedApplication(params=case_app.params, dwell_model=model)
            )
            bounds.extend(model.dwell(w) for w in curve.waits)
        slot_counts[label] = first_fit_allocation(analyzed).slot_count
        mean_bounds[label] = float(np.mean(bounds))
    return SegmentAblationResult(slot_counts=slot_counts, mean_dwell_bounds=mean_bounds)


# ---------------------------------------------------------------------------
# E7 — closed form vs fixed point
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FixedPointAblationResult:
    """Pessimism of the closed-form bound over random app sets."""

    samples: int
    mean_gap: float
    max_gap: float
    disagreements: int  # schedulability verdicts that differ

    def report(self) -> str:
        return (
            "Closed-form (Eq. 20) vs fixed point (Eq. 5)\n"
            f"samples: {self.samples}, mean wait-bound gap: {self.mean_gap:.3f} s, "
            f"max gap: {self.max_gap:.3f} s, verdict disagreements: {self.disagreements}"
        )


def _random_app(rng: np.random.Generator, index: int) -> AnalyzedApplication:
    xi_tt = rng.uniform(0.3, 2.0)
    xi_m = xi_tt * rng.uniform(1.0, 2.0)
    xi_et = xi_m * rng.uniform(2.0, 4.0)
    k_p = rng.uniform(0.2, 0.8) * xi_et
    deadline = xi_et * rng.uniform(0.8, 1.5)
    r = deadline * rng.uniform(1.5, 6.0)
    params = TimingParameters(
        name=f"R{index}",
        min_inter_arrival=r,
        deadline=deadline,
        xi_tt=xi_tt,
        xi_et=xi_et,
        xi_m=xi_m,
        k_p=k_p,
        xi_m_mono=xi_m * rng.uniform(1.0, 1.5),
    )
    return AnalyzedApplication.from_params(params)


def run_fixed_point_ablation(
    samples: int = 50, apps_per_set: int = 4, seed: int = 0
) -> FixedPointAblationResult:
    """E7: the closed form is never less pessimistic than the fixed point."""
    rng = np.random.default_rng(seed)
    gaps = []
    disagreements = 0
    for __ in range(samples):
        apps = [_random_app(rng, i) for i in range(apps_per_set)]
        subject = apps[-1]
        sharers = apps[:-1]
        closed = analyze_application(subject, sharers, method="closed-form")
        exact = analyze_application(subject, sharers, method="fixed-point")
        if np.isfinite(closed.max_wait) and np.isfinite(exact.max_wait):
            gap = closed.max_wait - exact.max_wait
            if gap < -1e-9:
                raise AssertionError(
                    "closed-form wait bound fell below the exact fixed point"
                )
            gaps.append(gap)
        if closed.schedulable != exact.schedulable:
            disagreements += 1
    return FixedPointAblationResult(
        samples=samples,
        mean_gap=float(np.mean(gaps)) if gaps else 0.0,
        max_gap=float(np.max(gaps)) if gaps else 0.0,
        disagreements=disagreements,
    )


# ---------------------------------------------------------------------------
# E8 — threshold sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdSweepResult:
    """xi_TT / xi_ET / peak dwell across steady-state thresholds."""

    rows: List[Tuple[float, float, float, float]]  # (Eth, xi_tt, xi_et, peak dwell)

    def report(self) -> str:
        return "Threshold (Eth) sweep on the servo rig\n" + format_table(
            ["Eth", "xi_TT [s]", "xi_ET [s]", "peak dwell [s]"],
            [list(row) for row in self.rows],
        )


def run_threshold_sweep(
    thresholds: Optional[List[float]] = None,
    wait_step: int = 4,
    max_samples: int = 500,
) -> ThresholdSweepResult:
    """E8: smaller thresholds stretch every response time."""
    thresholds = thresholds or [0.05, 0.1, 0.2, 0.4]
    rows = []
    for eth in thresholds:
        testbed = default_servo_testbed(ServoRigConfig(threshold=eth))
        xi_tt = testbed.response_time(0, max_samples=max_samples)
        xi_et = testbed.response_time(10**9, max_samples=max_samples)
        peak = 0.0
        last_wait = int(xi_et / testbed.config.period)
        for wait in range(0, last_wait + 1, wait_step):
            response = testbed.response_time(wait, max_samples=max_samples)
            peak = max(peak, response - wait * testbed.config.period)
        rows.append((eth, xi_tt, xi_et, peak))
    return ThresholdSweepResult(rows=rows)


# ---------------------------------------------------------------------------
# E11 — delay equalisation (jitter buffering) on/off
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JitterAblationResult:
    """Worst responses with and without actuation-delay equalisation.

    ``*_episodes`` counts threshold-crossing episodes; values above the
    number of injected disturbances indicate limit-cycle chattering
    around the threshold caused by the loop/delay model mismatch.
    """

    equalized: Dict[str, float]
    raw: Dict[str, float]
    equalized_misses: int
    raw_misses: int
    equalized_episodes: Dict[str, int]
    raw_episodes: Dict[str, int]

    def report(self) -> str:
        rows = [
            [
                name,
                self.equalized[name],
                self.raw.get(name, float("nan")),
                self.equalized_episodes[name],
                self.raw_episodes.get(name, 0),
            ]
            for name in sorted(self.equalized)
        ]
        return (
            "Delay-equalisation ablation (FlexRay network, heavy background traffic)\n"
            + format_table(
                [
                    "app",
                    "equalized response [s]",
                    "raw response [s]",
                    "episodes (eq)",
                    "episodes (raw)",
                ],
                rows,
            )
            + f"\ndeadline misses: equalized={self.equalized_misses}, raw={self.raw_misses}"
        )


def run_jitter_ablation(
    applications: Optional[List[CaseStudyApplication]] = None,
    wait_step: int = 4,
    horizon: float = 20.0,
) -> JitterAblationResult:
    """E11: actuating at the design-time delay vs as-soon-as-delivered.

    The controllers are designed for fixed worst-case delays; actuating
    messages the moment the (usually faster) bus delivers them de-tunes
    the loops.  Equalisation (jitter buffering) restores the design
    model.  This quantifies the difference under heavy background load.
    """
    from repro.control.disturbance import OneShotDisturbance
    from repro.core.allocation import first_fit_allocation
    from repro.flexray.bus import FlexRayBus
    from repro.flexray.frame import FrameSpec
    from repro.flexray.params import paper_bus_config
    from repro.sim.cosim import CoSimApplication, CoSimulator, FlexRayNetwork
    from repro.sim.traffic import heavy_background_traffic

    if applications is None:
        applications = simulation_applications(wait_step=wait_step)
    allocation = first_fit_allocation(
        [app.analyzed("non-monotonic") for app in applications]
    )
    results: Dict[bool, Dict[str, float]] = {}
    episodes: Dict[bool, Dict[str, int]] = {}
    misses: Dict[bool, int] = {}
    for equalize in (True, False):
        cosim_apps = [
            CoSimApplication(
                app=case_app.app,
                dynamics=case_app.plant.model,
                disturbance_state=case_app.plant.disturbance,
                disturbances=OneShotDisturbance(time=0.0),
                deadline=case_app.params.deadline,
                slot=allocation.slot_of(case_app.name),
                frame=FrameSpec(frame_id=index + 1, sender=case_app.name),
            )
            for index, case_app in enumerate(applications)
        ]
        network = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()),
            traffic=heavy_background_traffic(count=8, first_frame_id=100),
        )
        trace = CoSimulator(cosim_apps, network, equalize_delays=equalize).run(horizon)
        results[equalize] = {}
        episodes[equalize] = {}
        misses[equalize] = 0
        for case_app in applications:
            app_trace = trace[case_app.name]
            responses = app_trace.response_times
            worst = max(responses) if responses else float("inf")
            results[equalize][case_app.name] = worst
            episodes[equalize][case_app.name] = len(app_trace.tt_intervals())
            if not app_trace.deadline_met() or (
                app_trace.settling_time() is None
                and case_app.params.deadline < horizon
            ):
                misses[equalize] += 1
    return JitterAblationResult(
        equalized=results[True],
        raw=results[False],
        equalized_misses=misses[True],
        raw_misses=misses[False],
        equalized_episodes=episodes[True],
        raw_episodes=episodes[False],
    )


# ---------------------------------------------------------------------------
# E12 — quadratic QoC cost vs wait time
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QocAblationResult:
    """Quadratic cost of the switched response as the wait grows."""

    rows: List[Tuple[str, float, float, float]]
    # (app, cost at kwait=0, cost at kwait=max_wait, relative penalty)

    def report(self) -> str:
        return (
            "Quadratic QoC cost vs wait time (switched response, Eqs. 3-4)\n"
            + format_table(
                ["app", "J(kwait=0)", "J(kwait=max)", "penalty [%]"],
                [
                    [name, j0, j1, 100.0 * penalty]
                    for name, j0, j1, penalty in self.rows
                ],
            )
        )


def run_qoc_ablation(
    applications: Optional[List[CaseStudyApplication]] = None,
    wait_step: int = 4,
) -> QocAblationResult:
    """E12: waiting for the TT slot costs control quality, not just time.

    For each case-study application the infinite-horizon quadratic cost
    of the switched response is evaluated in closed form at zero wait and
    at the analysis's maximum wait for its allocated slot.
    """
    from repro.control.cost import switched_cost
    from repro.core.allocation import first_fit_allocation

    if applications is None:
        applications = simulation_applications(wait_step=wait_step)
    allocation = first_fit_allocation(
        [app.analyzed("non-monotonic") for app in applications]
    )
    rows = []
    for case_app in applications:
        app = case_app.app
        z0 = app.initial_state(case_app.plant.disturbance)
        period = app.period
        max_wait = allocation.analyses[case_app.name].max_wait
        wait_samples = int(np.ceil(max_wait / period))
        # Weight the augmented state with the plant's own design weights:
        # q on the physical states, r on the held input.  This makes the
        # cost the LQR objective the controllers were tuned for (up to
        # the one-step input shift), so units are commensurate.
        n = case_app.plant.model.n_states
        weight = np.zeros((z0.size, z0.size))
        weight[:n, :n] = case_app.plant.q
        weight[n:, n:] = case_app.plant.r
        j0 = switched_cost(app.a1, app.a2, z0, 0, weight=weight)
        j1 = switched_cost(app.a1, app.a2, z0, wait_samples, weight=weight)
        penalty = (j1 - j0) / j0 if j0 > 0 else 0.0
        rows.append((case_app.name, j0, j1, penalty))
    return QocAblationResult(rows=rows)


# ---------------------------------------------------------------------------
# E12 — event-driven vs legacy fixed-step co-simulation kernel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelAblationResult:
    """Cross-check of the three co-simulation kernels on one scenario.

    On analytic shared-period fleets all kernels are bitwise-equivalent
    by construction; this ablation re-verifies that on the full
    Figure 5 roster and reports each kernel's co-simulation wall-clock
    (best of ``repeats`` runs, so warm-cache timings are compared).
    """

    scenario: str
    event_seconds: float
    legacy_seconds: float
    batch_seconds: float
    traces_identical: bool
    samples: int
    apps: int

    @property
    def event_over_legacy(self) -> float:
        """Event-kernel wall-clock relative to legacy (<= 1 is a win)."""
        if self.legacy_seconds <= 0:
            return float("inf") if self.event_seconds > 0 else 1.0
        return self.event_seconds / self.legacy_seconds

    @property
    def batch_speedup_vs_legacy(self) -> float:
        """How many times faster the batch fast path runs than legacy."""
        if self.batch_seconds <= 0:
            return float("inf")
        return self.legacy_seconds / self.batch_seconds

    @property
    def batch_speedup_vs_event(self) -> float:
        """How many times faster the batch fast path runs than event."""
        if self.batch_seconds <= 0:
            return float("inf")
        return self.event_seconds / self.batch_seconds

    @property
    def event_speedup_vs_legacy(self) -> float:
        """How many times faster the event kernel runs than legacy."""
        if self.event_seconds <= 0:
            return float("inf")
        return self.legacy_seconds / self.event_seconds

    def report(self) -> str:
        verdict = "bitwise identical" if self.traces_identical else "DIVERGED"
        rows = [
            ["batch", f"{self.batch_seconds:.3f}",
             f"{self.batch_speedup_vs_legacy:.2f}x"],
            ["event", f"{self.event_seconds:.3f}",
             f"{self.event_speedup_vs_legacy:.2f}x"],
            ["legacy", f"{self.legacy_seconds:.3f}", "1.00x"],
        ]
        return (
            f"Co-simulation kernel ablation ({self.scenario}; "
            f"{self.apps} apps, {self.samples} samples)\n"
            + format_table(["kernel", "cosim stage [s]", "vs legacy"], rows)
            + f"\ntraces: {verdict}"
        )


def traces_bitwise_equal(a, b) -> bool:
    """Exact (no-tolerance) equality of two simulation traces."""
    if set(a.apps) != set(b.apps):
        return False
    for name in a.apps:
        ta, tb = a[name], b[name]
        for fld in ("times", "norms", "delays", "states", "response_times"):
            va, vb = getattr(ta, fld), getattr(tb, fld)
            if len(va) != len(vb) or any(x != y for x, y in zip(va, vb)):
                return False
    return True


def run_kernel_ablation(
    wait_step: int = 2,
    horizon: Optional[float] = None,
    repeats: int = 1,
    scenario: str = "fig5-cosim-analytic",
) -> KernelAblationResult:
    """E12: event and batch kernels must reproduce legacy exactly.

    ``repeats`` re-runs each kernel and keeps the fastest co-simulation
    stage (the first pass pays process-wide cache warm-up; benchmarks
    that publish ratios should pass ``repeats>=3``).  ``scenario``
    selects the ablation subject: the default analytic Figure 5 roster
    exercises the analytic batch kernel, while ``"fig5-cosim"`` (a
    loss-free cycle-accurate FlexRay bus) exercises the deterministic
    FlexRay schedule-precomputation path.
    """
    from repro.pipeline import DesignStudy, get_scenario

    base = get_scenario(scenario).derive(wait_step=wait_step, horizon=horizon)
    runs = {}
    seconds = {}
    for kernel in ("legacy", "event", "batch"):
        best = float("inf")
        for _ in range(max(1, repeats)):
            study = (
                DesignStudy(base.derive(name=f"{base.name}@{kernel}", kernel=kernel))
                .run()
                .raise_for_failure()
            )
            best = min(best, study.stage("cosim").elapsed)
        runs[kernel] = study
        seconds[kernel] = best
    legacy_trace = runs["legacy"].attachments.trace
    identical = all(
        traces_bitwise_equal(runs[kernel].attachments.trace, legacy_trace)
        for kernel in ("event", "batch")
    )
    return KernelAblationResult(
        scenario=base.name,
        event_seconds=seconds["event"],
        legacy_seconds=seconds["legacy"],
        batch_seconds=seconds["batch"],
        traces_identical=identical,
        samples=sum(len(t.times) for t in legacy_trace.apps.values()),
        apps=len(legacy_trace.apps),
    )


__all__ = [
    "FixedPointAblationResult",
    "JitterAblationResult",
    "KernelAblationResult",
    "QocAblationResult",
    "SegmentAblationResult",
    "ThresholdSweepResult",
    "run_fixed_point_ablation",
    "run_jitter_ablation",
    "run_kernel_ablation",
    "run_qoc_ablation",
    "run_segment_ablation",
    "run_threshold_sweep",
    "traces_bitwise_equal",
]
