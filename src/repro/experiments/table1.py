"""Experiment E3 — Table I: application timing parameters.

Paper mode reproduces the table verbatim (the analysis input); simulation
mode regenerates an analogous table from the six plant models via the
full characterisation pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.timing_params import PAPER_TABLE_I, TimingParameters
from repro.experiments.casestudy import CaseStudyApplication
from repro.experiments.reporting import format_table

_COLUMNS = ["app", "r [s]", "xi_d [s]", "xi_TT [s]", "xi_ET [s]", "xi_M [s]", "k_p [s]", "xi'_M [s]"]


def _rows(params: List[TimingParameters]) -> List[list]:
    return [
        [
            p.name,
            p.min_inter_arrival,
            p.deadline,
            p.xi_tt,
            p.xi_et,
            p.xi_m,
            p.k_p,
            p.xi_m_mono,
        ]
        for p in params
    ]


@dataclass(frozen=True)
class Table1Result:
    """Both flavours of Table I."""

    paper: List[TimingParameters]
    simulated: Optional[List[CaseStudyApplication]]

    def paper_report(self) -> str:
        return "Table I (paper, verbatim)\n" + format_table(_COLUMNS, _rows(self.paper))

    def simulated_report(self) -> str:
        if self.simulated is None:
            return "(simulation mode not run)"
        params = [app.params for app in self.simulated]
        return "Table I analogue (simulated plants)\n" + format_table(
            _COLUMNS, _rows(params)
        )

    def report(self) -> str:
        return self.paper_report() + "\n\n" + self.simulated_report()


def run_table1(include_simulation: bool = True, wait_step: int = 2) -> Table1Result:
    """Produce Table I in paper mode and (optionally) simulation mode.

    Simulation mode runs the ``sim-table1`` pipeline scenario, sharing
    its memoized dwell measurements with every other consumer.
    """
    simulated = None
    if include_simulation:
        from repro.pipeline import DesignStudy, get_scenario

        study = DesignStudy(
            get_scenario("sim-table1").derive(wait_step=wait_step)
        ).run()
        simulated = study.raise_for_failure().attachments.case_apps
    return Table1Result(paper=list(PAPER_TABLE_I), simulated=simulated)


__all__ = ["Table1Result", "run_table1"]
