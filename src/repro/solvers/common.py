"""Shared machinery for allocator backends.

Hosts the pieces every packing strategy needs: the final
slot-list -> :class:`~repro.core.allocation.AllocationResult` conversion,
the fits-alone feasibility guard, and the frozenset-keyed
:class:`FeasibilityCache` that memoizes slot-schedulability queries for
the search-based backends (branch-and-bound probes the same candidate
slots along many branches; annealing revisits them across moves).

Slot schedulability is *monotone*: analysing an application against a
superset of sharers can only increase its blocking term and interference
utilisation, so an infeasible set stays infeasible under any extension.
The exact searches rely on this to prune with pairwise conflicts.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from repro.core.allocation import AllocationResult
from repro.core.schedulability import (
    AnalyzedApplication,
    analyze_slot,
    is_slot_schedulable,
)
from repro.solvers.types import InfeasibleAllocationError


def finalize_slots(
    slots: List[List[AnalyzedApplication]],
    method: str,
    stats: Optional[Dict[str, Any]] = None,
) -> AllocationResult:
    """Wrap packed slots into an :class:`AllocationResult`.

    Runs the final per-application analysis on every slot so the result
    carries the worst-case numbers callers report.
    """
    analyses = {}
    for slot in slots:
        for result in analyze_slot(slot, method=method):
            analyses[result.name] = result
    return AllocationResult(
        slots=slots, analyses=analyses, method=method, stats=stats
    )


def require_fits_alone(app: AnalyzedApplication, method: str) -> None:
    """Raise unless ``app`` is schedulable on a dedicated slot.

    Opening a fresh slot only helps if the application is schedulable on
    a slot all of its own; otherwise no packing can succeed.
    """
    if not is_slot_schedulable([app], method=method):
        raise InfeasibleAllocationError(
            f"application {app.name} cannot meet its deadline even on "
            "a dedicated TT slot"
        )


class FeasibilityCache:
    """Memoized slot-schedulability oracle over a fixed application list.

    Queries are keyed by the ``frozenset`` of application *indices* into
    the list given at construction, so permutation-equivalent candidate
    slots hit the same entry.  Hit/miss counters feed the scale
    benchmark's cache-effectiveness report.
    """

    def __init__(self, apps: Sequence[AnalyzedApplication], method: str):
        self.apps = list(apps)
        self.method = method
        self._table: Dict[FrozenSet[int], bool] = {}
        self.hits = 0
        self.misses = 0

    def schedulable(self, indices: FrozenSet[int]) -> bool:
        """Whether the slot holding exactly these applications works."""
        try:
            verdict = self._table[indices]
        except KeyError:
            self.misses += 1
            verdict = is_slot_schedulable(
                [self.apps[i] for i in indices], method=self.method
            )
            self._table[indices] = verdict
            return verdict
        self.hits += 1
        return verdict

    @property
    def entries(self) -> int:
        return len(self._table)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-safe cache-effectiveness record."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }

    def slots_of(self, index_slots: Sequence[Sequence[int]]) -> List[List[AnalyzedApplication]]:
        """Translate index slots back into application slots."""
        return [[self.apps[i] for i in slot] for slot in index_slots]


def greedy_first_fit_indices(
    cache: FeasibilityCache, order: Sequence[int]
) -> List[List[int]]:
    """Index-level first-fit packing through a feasibility cache.

    Seeds the exact and randomized searches with a feasible incumbent
    while warming the cache they will keep probing.  Assumes every app
    fits alone (callers guard via :func:`require_fits_alone`).
    """
    slots: List[List[int]] = []
    for index in order:
        for slot in slots:
            if cache.schedulable(frozenset(slot) | {index}):
                slot.append(index)
                break
        else:
            slots.append([index])
    return slots


__all__ = [
    "FeasibilityCache",
    "finalize_slots",
    "greedy_first_fit_indices",
    "require_fits_alone",
]
