"""Solver-backend contracts: errors, protocols, and capability metadata.

The solver API has two pluggable axes:

* **Allocators** pack analysed applications onto shared TT slots.  A
  backend is any callable satisfying :class:`Allocator`; registering it
  (:func:`repro.solvers.register_allocator`) attaches an
  :class:`AllocatorSpec` carrying capability metadata — whether the
  backend is exact, its complexity class, which analysis methods it
  supports, and its practical size limit — so pipelines and CLIs can
  introspect and validate without hard-coded name lists.
* **Analysis methods** compute the maximum wait time of an application
  on a shared slot from its (lower, higher) priority sharers.  The
  registry unifies the paper's closed-form bound, the exact fixed
  point, and the Eq. 21 lower bound behind one interface
  (:class:`AnalysisMethodSpec`).

All solver failures derive from :class:`SolverError`, itself a
:class:`ValueError`, so the CLI's existing domain-error handling (exit
code 2, no traceback) and the pipeline runner's failed-stage capture
apply to every backend uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.allocation import AllocationResult
    from repro.core.schedulability import AnalyzedApplication


class SolverError(ValueError):
    """Base class for domain errors raised by solver backends.

    Subclasses :class:`ValueError` so existing callers (the pipeline
    runner, the CLI's exit-code-2 mapping, legacy ``except ValueError``
    sites) keep working unchanged.
    """


class UnknownSolverError(SolverError):
    """An allocator or analysis-method name is not registered."""


class InstanceTooLargeError(SolverError):
    """The instance exceeds the backend's practical size limit."""


class InfeasibleAllocationError(SolverError):
    """No schedulable allocation exists for the given applications."""


class Allocator(Protocol):
    """Structural type every allocator backend implements.

    An allocator consumes analysed applications and returns an
    :class:`~repro.core.allocation.AllocationResult`; extra keyword
    options (seeds, size caps, iteration budgets) are backend-specific.
    """

    def __call__(
        self,
        apps: Sequence["AnalyzedApplication"],
        method: str = "closed-form",
        **options: Any,
    ) -> "AllocationResult":  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class AllocatorSpec:
    """A registered allocator backend plus its capability metadata.

    Attributes
    ----------
    name:
        Registry key (also the :class:`~repro.pipeline.scenario.Scenario`
        ``allocator`` value).
    func:
        The backend callable (excluded from equality comparison).
    summary:
        One-line human description for listings.
    optimal:
        Whether the backend guarantees a minimum slot count.
    complexity:
        Informal complexity class (``"O(n^2) analyses"``, ``"Bell(n)"``,
        ...), for capability listings only.
    methods:
        Analysis methods the backend supports; ``None`` means every
        registered method.
    max_apps:
        Practical instance-size ceiling (``None`` = unbounded).  Purely
        informational here; backends enforce their own limits so callers
        can override per call.
    randomized:
        Whether results depend on a seed (heuristic local search).
    """

    name: str
    func: Callable[..., "AllocationResult"] = field(compare=False)
    summary: str = ""
    optimal: bool = False
    complexity: str = "unspecified"
    methods: Optional[Tuple[str, ...]] = None
    max_apps: Optional[int] = None
    randomized: bool = False

    def supports_method(self, method: str) -> bool:
        return self.methods is None or method in self.methods

    def __call__(
        self,
        apps: Sequence["AnalyzedApplication"],
        method: str = "closed-form",
        **options: Any,
    ) -> "AllocationResult":
        if not self.supports_method(method):
            raise SolverError(
                f"allocator {self.name!r} does not support analysis method "
                f"{method!r}; supported: {list(self.methods or ())}"
            )
        return self.func(apps, method=method, **options)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe capability record (the callable is omitted)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "optimal": self.optimal,
            "complexity": self.complexity,
            "methods": list(self.methods) if self.methods is not None else None,
            "max_apps": self.max_apps,
            "randomized": self.randomized,
        }


@dataclass(frozen=True)
class AnalysisMethodSpec:
    """A registered maximum-wait analysis method plus metadata.

    Attributes
    ----------
    name:
        Registry key (also the scenario ``method`` value).
    func:
        ``func(lower_priority, higher_priority) -> max_wait`` in seconds;
        raises :class:`~repro.core.schedulability.UnschedulableError`
        when no finite wait bound exists.
    summary:
        One-line human description.
    exact:
        Whether the method computes the exact worst case.
    bound:
        ``"upper"``, ``"exact"``, or ``"lower"`` — how the value relates
        to the true maximum wait.
    safe:
        Whether the value may be used for deadline *guarantees*.  Lower
        bounds are unsafe: they are for gap studies and sanity checks,
        never admission.
    """

    name: str
    func: Callable[..., float] = field(compare=False)
    summary: str = ""
    exact: bool = False
    bound: str = "upper"
    safe: bool = True

    def __call__(
        self,
        lower_priority: Sequence["AnalyzedApplication"],
        higher_priority: Sequence["AnalyzedApplication"],
    ) -> float:
        return self.func(lower_priority, higher_priority)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "summary": self.summary,
            "exact": self.exact,
            "bound": self.bound,
            "safe": self.safe,
        }


__all__ = [
    "Allocator",
    "AllocatorSpec",
    "AnalysisMethodSpec",
    "InfeasibleAllocationError",
    "InstanceTooLargeError",
    "SolverError",
    "UnknownSolverError",
]
