"""Randomized local search ("annealing") for large application fleets.

The exact backends stop being practical somewhere in the twenties of
applications; synthetic fleet studies want hundreds.  This backend runs
a seeded simulated-annealing search over feasible allocations:

* start from the first-fit solution (always feasible);
* propose moves — relocate one application to another feasible slot, or
  swap two applications between slots — evaluated through the shared
  frozenset-keyed :class:`~repro.solvers.common.FeasibilityCache`;
* score allocations by slot count first and load concentration second
  (``-sum(len(slot)^2)``), so the walk drains nearly-empty slots and
  eventually closes them;
* accept improving moves always and worsening moves with a geometric
  cooling probability, keeping the best feasible allocation ever seen.

Deterministic for a fixed ``seed``; never returns an infeasible
allocation (every intermediate state is feasible by construction).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.core.allocation import AllocationResult
from repro.core.schedulability import AnalyzedApplication
from repro.core.timing_params import priority_order
from repro.solvers.common import (
    FeasibilityCache,
    finalize_slots,
    greedy_first_fit_indices,
    require_fits_alone,
)
from repro.solvers.registry import register_allocator


def _energy(slots: List[List[int]], n: int) -> float:
    """Lower is better: slot count dominates, concentration tie-breaks."""
    weight = n * n + 1  # one slot always outweighs any concentration gain
    return len(slots) * weight - sum(len(slot) ** 2 for slot in slots)


@register_allocator(
    "anneal",
    summary="seeded simulated annealing for 100+ app fleets (heuristic)",
    optimal=False,
    complexity="O(iterations) memoized slot analyses",
    randomized=True,
)
def anneal(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    seed: int = 0,
    iterations: Optional[int] = None,
    initial_temperature: float = 2.0,
    cooling: float = 0.995,
) -> AllocationResult:
    """Heuristic minimum-slot packing for fleets beyond exact reach.

    Parameters
    ----------
    apps:
        Applications to place (any count; hundreds are fine).
    method:
        Wait-time analysis method (any registered name).
    seed:
        RNG seed; fixing it makes the result reproducible.
    iterations:
        Move proposals; defaults to ``300 + 40 * len(apps)``.
    initial_temperature, cooling:
        Annealing schedule (temperature multiplies by ``cooling`` each
        proposal; worsening moves accept with ``exp(-delta/T)``).
    """
    ordered = list(priority_order(apps))
    n = len(ordered)
    for app in ordered:
        require_fits_alone(app, method)
    cache = FeasibilityCache(ordered, method)
    if n == 0:
        return finalize_slots([], method, stats={"feasibility_cache": cache.stats()})
    if iterations is None:
        iterations = 300 + 40 * n

    rng = random.Random(seed)
    slots = greedy_first_fit_indices(cache, range(n))
    energy = _energy(slots, n)
    best = [list(slot) for slot in slots]
    best_energy = energy
    temperature = float(initial_temperature)
    accepted = 0

    for _ in range(iterations):
        temperature *= cooling
        if len(slots) <= 1:
            break  # nothing left to improve
        source_index = rng.randrange(len(slots))
        source = slots[source_index]
        app = source[rng.randrange(len(source))]
        target_index = rng.randrange(len(slots) - 1)
        if target_index >= source_index:
            target_index += 1
        target = slots[target_index]

        if rng.random() < 0.8:
            # Relocate `app` into the target slot.
            if not cache.schedulable(frozenset(target) | {app}):
                continue
            new_source = [x for x in source if x != app]
            trial = [
                list(slot)
                for index, slot in enumerate(slots)
                if index not in (source_index, target_index)
            ]
            if new_source:
                trial.append(new_source)
            trial.append(target + [app])
        else:
            # Swap `app` with a random occupant of the target slot.
            other = target[rng.randrange(len(target))]
            new_source = frozenset(x for x in source if x != app) | {other}
            new_target = frozenset(x for x in target if x != other) | {app}
            if not (
                cache.schedulable(new_source) and cache.schedulable(new_target)
            ):
                continue
            trial = [
                list(slot)
                for index, slot in enumerate(slots)
                if index not in (source_index, target_index)
            ]
            trial.append(sorted(new_source))
            trial.append(sorted(new_target))

        trial_energy = _energy(trial, n)
        delta = trial_energy - energy
        if delta <= 0 or (
            temperature > 1e-9 and rng.random() < math.exp(-delta / temperature)
        ):
            slots = trial
            energy = trial_energy
            accepted += 1
            if energy < best_energy:
                best = [list(slot) for slot in slots]
                best_energy = energy

    packed = [sorted(slot) for slot in best]
    packed.sort(key=lambda slot: slot[0])
    stats = {
        "allocator": "anneal",
        "seed": seed,
        "iterations": iterations,
        "accepted_moves": accepted,
        "slot_count": len(packed),
        "feasibility_cache": cache.stats(),
    }
    return finalize_slots(cache.slots_of(packed), method, stats=stats)


__all__ = ["anneal"]
