"""The classic packing backends (paper Sections IV-V), registered.

These are the five strategies the pipeline has always shipped — the
paper's first-fit heuristic, the best-/worst-fit variants, the
dedicated-slot baseline, and the exhaustive set-partition optimum — now
implemented against the solver API.  The historical free functions in
:mod:`repro.core.allocation` are thin shims over these registrations.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.allocation import AllocationResult
from repro.core.schedulability import AnalyzedApplication, is_slot_schedulable
from repro.core.timing_params import priority_order
from repro.solvers.common import finalize_slots, require_fits_alone
from repro.solvers.registry import register_allocator
from repro.solvers.types import InfeasibleAllocationError, InstanceTooLargeError


@register_allocator(
    "first-fit",
    summary="paper Sec. V heuristic: earliest feasible slot, priority order",
    optimal=False,
    complexity="O(n^2) slot analyses",
)
def first_fit(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_slots: Optional[int] = None,
) -> AllocationResult:
    """The paper's first-fit heuristic.

    Applications are taken in decreasing priority (shortest deadline
    first).  Each is tentatively added to the earliest existing slot; if
    the whole slot (including previously placed applications, whose
    schedulability the newcomer can break) remains schedulable it stays,
    otherwise the next slot is tried, and a fresh slot is opened when
    none fits.

    Parameters
    ----------
    apps:
        Applications to place.
    method:
        Wait-time analysis method (any registered name).
    max_slots:
        Optional cap; exceeding it raises
        :class:`~repro.solvers.types.InfeasibleAllocationError` (the
        paper assumes the result fits the bus's ``m`` static slots).
    """
    slots: List[List[AnalyzedApplication]] = []
    for app in priority_order(apps):
        placed = False
        for slot in slots:
            candidate = slot + [app]
            if is_slot_schedulable(candidate, method=method):
                slot.append(app)
                placed = True
                break
        if not placed:
            require_fits_alone(app, method)
            slots.append([app])
            if max_slots is not None and len(slots) > max_slots:
                raise InfeasibleAllocationError(
                    f"allocation needs more than the available {max_slots} TT slots"
                )
    return finalize_slots(slots, method)


def _fit_by(
    apps: Sequence[AnalyzedApplication],
    method: str,
    choose: Callable[[List[List[AnalyzedApplication]]], List[AnalyzedApplication]],
) -> AllocationResult:
    """Shared packing loop for the choose-a-feasible-slot heuristics."""
    slots: List[List[AnalyzedApplication]] = []
    for app in priority_order(apps):
        candidates = [
            slot
            for slot in slots
            if is_slot_schedulable(slot + [app], method=method)
        ]
        if candidates:
            choose(candidates).append(app)
            continue
        require_fits_alone(app, method)
        slots.append([app])
    return finalize_slots(slots, method)


@register_allocator(
    "best-fit",
    summary="place each app on the fullest still-schedulable slot",
    optimal=False,
    complexity="O(n^2) slot analyses",
)
def best_fit(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> AllocationResult:
    """Best-fit variant: place each application on the *fullest* slot
    (most applications) that still keeps everyone schedulable."""
    return _fit_by(apps, method, lambda candidates: max(candidates, key=len))


@register_allocator(
    "worst-fit",
    summary="place each app on the emptiest feasible slot (spreads slack)",
    optimal=False,
    complexity="O(n^2) slot analyses",
)
def worst_fit(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> AllocationResult:
    """Worst-fit variant: place each application on the *emptiest*
    feasible slot, spreading load across slots."""
    return _fit_by(apps, method, lambda candidates: min(candidates, key=len))


@register_allocator(
    "dedicated",
    summary="baseline: one dedicated TT slot per application (no sharing)",
    optimal=False,
    complexity="O(n) slot analyses",
)
def dedicated(
    apps: Sequence[AnalyzedApplication], method: str = "closed-form"
) -> AllocationResult:
    """Baseline: one dedicated TT slot per application (no sharing)."""
    slots = [[app] for app in priority_order(apps)]
    return finalize_slots(slots, method)


@register_allocator(
    "optimal",
    summary="exhaustive set-partition minimum (Bell-number blow-up)",
    optimal=True,
    complexity="Bell(n) partitions",
    max_apps=10,
)
def optimal(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_apps: int = 10,
) -> AllocationResult:
    """Exhaustive minimum-slot partition search (small instances only).

    Enumerates set partitions in order of increasing block count and
    returns the first fully schedulable one.  Complexity is the Bell
    number of ``len(apps)``; refuse anything beyond ``max_apps`` — for
    larger instances use the ``branch-and-bound`` backend, which proves
    the same optimum with schedulability pruning.
    """
    ordered = list(priority_order(apps))
    if len(ordered) > max_apps:
        raise InstanceTooLargeError(
            f"optimal allocation is exponential; refusing {len(ordered)} apps "
            f"(max_apps={max_apps}); use the 'branch-and-bound' allocator "
            "for larger exact solves"
        )
    for count in range(1, len(ordered) + 1):
        for partition in _partitions_into(ordered, count):
            if all(is_slot_schedulable(slot, method=method) for slot in partition):
                return finalize_slots([list(slot) for slot in partition], method)
    # Dedicated slots are always a valid partition if each app alone is
    # schedulable; reaching here means some app misses even alone.
    raise InfeasibleAllocationError(
        "no schedulable allocation exists (some deadline < xi_tt?)"
    )


def _partitions_into(items: List, blocks: int):
    """Yield all partitions of ``items`` into exactly ``blocks`` groups."""
    if blocks == 1:
        yield [items]
        return
    if blocks == len(items):
        yield [[item] for item in items]
        return
    if blocks > len(items):
        return
    first, rest = items[0], items[1:]
    # Either `first` joins an existing block of a (blocks)-partition of rest...
    for partition in _partitions_into(rest, blocks):
        for index in range(len(partition)):
            yield (
                partition[:index]
                + [[first] + partition[index]]
                + partition[index + 1:]
            )
    # ...or forms its own block atop a (blocks-1)-partition of rest.
    for partition in _partitions_into(rest, blocks - 1):
        yield [[first]] + partition


__all__ = ["best_fit", "dedicated", "first_fit", "optimal", "worst_fit"]
