"""Built-in maximum-wait analysis methods, registered.

Unifies the paper's three wait-time characterisations behind the
:class:`~repro.solvers.types.AnalysisMethodSpec` interface:

* ``closed-form`` — the Eq. 20 upper bound ``a' / (1 - m)`` (Section V
  uses this as *the* maximum wait);
* ``fixed-point`` — the exact Eq. 5 fixed point, iterated;
* ``lower-bound`` — the Eq. 21 bound ``a / (1 - m)``.  Optimistic by
  construction (``safe=False``): use it for bound-gap studies, never to
  certify deadlines.

Each delegates to the corresponding :mod:`repro.core.schedulability`
function; :func:`~repro.core.schedulability.analyze_application`
dispatches back through the registry, so a method registered here (or by
a third party) is immediately usable as ``Scenario(method=...)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schedulability import (
    AnalyzedApplication,
    max_wait_closed_form,
    max_wait_fixed_point,
    max_wait_lower_bound,
)
from repro.solvers.registry import register_analysis_method


@register_analysis_method(
    "closed-form",
    summary="paper Eq. 20 upper bound a'/(1-m) (Section V default)",
    exact=False,
    bound="upper",
    safe=True,
)
def closed_form(
    lower_priority: Sequence[AnalyzedApplication],
    higher_priority: Sequence[AnalyzedApplication],
) -> float:
    return max_wait_closed_form(lower_priority, higher_priority)


@register_analysis_method(
    "fixed-point",
    summary="exact Eq. 5 fixed-point iteration",
    exact=True,
    bound="exact",
    safe=True,
)
def fixed_point(
    lower_priority: Sequence[AnalyzedApplication],
    higher_priority: Sequence[AnalyzedApplication],
) -> float:
    return max_wait_fixed_point(lower_priority, higher_priority)


@register_analysis_method(
    "lower-bound",
    summary="paper Eq. 21 lower bound a/(1-m); gap studies only, unsafe",
    exact=False,
    bound="lower",
    safe=False,
)
def lower_bound(
    lower_priority: Sequence[AnalyzedApplication],
    higher_priority: Sequence[AnalyzedApplication],
) -> float:
    return max_wait_lower_bound(lower_priority, higher_priority)


__all__ = ["closed_form", "fixed_point", "lower_bound"]
