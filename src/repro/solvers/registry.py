"""Decorator-based registries for allocator and analysis-method backends.

Third parties extend the toolchain without touching the pipeline::

    from repro.solvers import register_allocator
    from repro.solvers.common import finalize_slots

    @register_allocator(
        "one-big-slot",
        summary="everything on a single shared slot (may be infeasible)",
        optimal=False,
        complexity="O(n^2) analyses",
    )
    def one_big_slot(apps, method="closed-form"):
        return finalize_slots([list(apps)], method)

The name is immediately valid everywhere a built-in is:
``Scenario(allocator="one-big-slot")`` validates against this registry,
``DesignStudy`` dispatches through it, and ``repro solvers`` lists it
with its capability metadata.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.solvers.types import (
    AllocatorSpec,
    AnalysisMethodSpec,
    UnknownSolverError,
)

# Populated by the backend modules' registration decorators when the
# package is imported: any `import repro.solvers.<anything>` first runs
# the package __init__, which imports every built-in backend module, so
# by the time a lookup below can execute the built-ins are registered.
_ALLOCATOR_REGISTRY: Dict[str, AllocatorSpec] = {}
_METHOD_REGISTRY: Dict[str, AnalysisMethodSpec] = {}


# ---------------------------------------------------------------------------
# Allocators
# ---------------------------------------------------------------------------


def register_allocator(
    name: str,
    *,
    summary: str = "",
    optimal: bool = False,
    complexity: str = "unspecified",
    methods: Optional[Sequence[str]] = None,
    max_apps: Optional[int] = None,
    randomized: bool = False,
    overwrite: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator: register ``func`` as the allocator backend ``name``.

    The decorated function is returned unchanged; the registry stores an
    :class:`~repro.solvers.types.AllocatorSpec` wrapping it together
    with the capability metadata.
    """

    def decorator(func: Callable) -> Callable:
        if not overwrite and name in _ALLOCATOR_REGISTRY:
            raise ValueError(f"allocator {name!r} is already registered")
        _ALLOCATOR_REGISTRY[name] = AllocatorSpec(
            name=name,
            func=func,
            summary=summary,
            optimal=optimal,
            complexity=complexity,
            methods=tuple(methods) if methods is not None else None,
            max_apps=max_apps,
            randomized=randomized,
        )
        return func

    return decorator


def unregister_allocator(name: str) -> None:
    """Remove a registered allocator (primarily for test isolation)."""
    _ALLOCATOR_REGISTRY.pop(name, None)


def get_allocator(name: str) -> AllocatorSpec:
    """Look up an allocator spec by name.

    Raises
    ------
    UnknownSolverError
        Listing the registered names, so typos diagnose themselves.
    """
    try:
        return _ALLOCATOR_REGISTRY[name]
    except KeyError:
        raise UnknownSolverError(
            f"unknown allocator {name!r}; registered allocators: "
            f"{allocator_names()}"
        ) from None


def allocator_names() -> List[str]:
    """All registered allocator names, sorted."""
    return sorted(_ALLOCATOR_REGISTRY)


def allocators() -> List[AllocatorSpec]:
    """All registered allocator specs, sorted by name."""
    return [_ALLOCATOR_REGISTRY[name] for name in allocator_names()]


def allocate(name: str, apps, method: str = "closed-form", **options):
    """Run the named allocator: ``get_allocator(name)(apps, ...)``."""
    return get_allocator(name)(apps, method=method, **options)


# ---------------------------------------------------------------------------
# Analysis methods
# ---------------------------------------------------------------------------


def register_analysis_method(
    name: str,
    *,
    summary: str = "",
    exact: bool = False,
    bound: str = "upper",
    safe: bool = True,
    overwrite: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator: register ``func(lower, higher) -> max_wait`` as ``name``."""
    if bound not in ("upper", "exact", "lower"):
        raise ValueError(
            f"bound must be 'upper', 'exact', or 'lower', got {bound!r}"
        )

    def decorator(func: Callable) -> Callable:
        if not overwrite and name in _METHOD_REGISTRY:
            raise ValueError(f"analysis method {name!r} is already registered")
        _METHOD_REGISTRY[name] = AnalysisMethodSpec(
            name=name,
            func=func,
            summary=summary,
            exact=exact,
            bound=bound,
            safe=safe,
        )
        return func

    return decorator


def unregister_analysis_method(name: str) -> None:
    """Remove a registered analysis method (primarily for tests)."""
    _METHOD_REGISTRY.pop(name, None)


def get_analysis_method(name: str) -> AnalysisMethodSpec:
    """Look up an analysis-method spec by name.

    Raises
    ------
    UnknownSolverError
        With the registered names in the message.  The wording keeps the
        historical ``unknown method`` prefix that downstream error
        handling (and tests) match on.
    """
    try:
        return _METHOD_REGISTRY[name]
    except KeyError:
        raise UnknownSolverError(
            f"unknown method {name!r}; registered analysis methods: "
            f"{analysis_method_names()}"
        ) from None


def analysis_method_names() -> List[str]:
    """All registered analysis-method names, sorted."""
    return sorted(_METHOD_REGISTRY)


def analysis_methods() -> List[AnalysisMethodSpec]:
    """All registered analysis-method specs, sorted by name."""
    return [_METHOD_REGISTRY[name] for name in analysis_method_names()]


def solver_table() -> Dict[str, List[Dict]]:
    """JSON-safe capability listing of every registered backend.

    The ``repro solvers`` CLI and the README's solver table derive from
    this single source of truth.
    """
    return {
        "allocators": [spec.to_dict() for spec in allocators()],
        "analysis_methods": [spec.to_dict() for spec in analysis_methods()],
    }


__all__ = [
    "allocate",
    "allocator_names",
    "allocators",
    "analysis_method_names",
    "analysis_methods",
    "get_allocator",
    "get_analysis_method",
    "register_allocator",
    "register_analysis_method",
    "solver_table",
    "unregister_allocator",
    "unregister_analysis_method",
]
