"""Pluggable solver backends: allocator & wait-analysis registries.

The slot-sharing toolchain's two extension points as first-class,
introspectable registries:

* **Allocators** (:func:`register_allocator` / :func:`get_allocator`) —
  strategies packing analysed applications onto shared TT slots.
  Built-ins: the paper's ``first-fit`` plus ``best-fit``, ``worst-fit``,
  the ``dedicated`` baseline, the exhaustive ``optimal`` search, the
  scalable exact ``branch-and-bound``, and the ``anneal`` heuristic for
  100+ app fleets.
* **Analysis methods** (:func:`register_analysis_method` /
  :func:`get_analysis_method`) — maximum-wait characterisations:
  ``closed-form`` (Eq. 20), ``fixed-point`` (exact Eq. 5), and
  ``lower-bound`` (Eq. 21, gap studies only).

Every registered name is a valid ``Scenario(allocator=..., method=...)``
value, dispatched by the pipeline with no further wiring; capability
metadata (exactness, complexity, size limits) is queryable via
:func:`solver_table` and the ``repro solvers`` CLI.

Quickstart — writing a custom allocator::

    from repro.solvers import register_allocator
    from repro.solvers.common import finalize_slots, require_fits_alone
    from repro.core.timing_params import priority_order

    @register_allocator(
        "next-fit",
        summary="only ever try the most recently opened slot",
        optimal=False,
        complexity="O(n) slot analyses",
    )
    def next_fit(apps, method="closed-form"):
        from repro.core.schedulability import is_slot_schedulable
        slots = []
        for app in priority_order(apps):
            if slots and is_slot_schedulable(slots[-1] + [app], method=method):
                slots[-1].append(app)
            else:
                require_fits_alone(app, method)
                slots.append([app])
        return finalize_slots(slots, method)

    from repro.pipeline import DesignStudy, get_scenario
    study = DesignStudy(
        get_scenario("paper-table1").derive(allocator="next-fit")
    ).run()
"""

from repro.solvers.registry import (
    allocate,
    allocator_names,
    allocators,
    analysis_method_names,
    analysis_methods,
    get_allocator,
    get_analysis_method,
    register_allocator,
    register_analysis_method,
    solver_table,
    unregister_allocator,
    unregister_analysis_method,
)
from repro.solvers.common import (
    FeasibilityCache,
    finalize_slots,
    greedy_first_fit_indices,
    require_fits_alone,
)
from repro.solvers.types import (
    Allocator,
    AllocatorSpec,
    AnalysisMethodSpec,
    InfeasibleAllocationError,
    InstanceTooLargeError,
    SolverError,
    UnknownSolverError,
)

# Importing the backend modules registers the built-ins eagerly for
# anyone importing the package; the registry also lazy-loads them for
# callers that reach `repro.solvers.registry` directly.
from repro.solvers import analysis as _analysis  # noqa: F401
from repro.solvers import anneal as _anneal  # noqa: F401
from repro.solvers import branch_and_bound as _branch_and_bound  # noqa: F401
from repro.solvers import classic as _classic  # noqa: F401

__all__ = [
    "Allocator",
    "AllocatorSpec",
    "AnalysisMethodSpec",
    "FeasibilityCache",
    "InfeasibleAllocationError",
    "InstanceTooLargeError",
    "SolverError",
    "UnknownSolverError",
    "allocate",
    "allocator_names",
    "allocators",
    "analysis_method_names",
    "analysis_methods",
    "finalize_slots",
    "get_allocator",
    "get_analysis_method",
    "greedy_first_fit_indices",
    "register_allocator",
    "register_analysis_method",
    "require_fits_alone",
    "solver_table",
    "unregister_allocator",
    "unregister_analysis_method",
]
