"""Exact minimum-slot allocation by branch-and-bound.

Replaces the exhaustive set-partition enumeration (Bell-number
complexity, practical up to ~10 applications) with a pruned depth-first
search that proves the same optimum for instances at least twice that
size:

* **Feasibility memoization** — every candidate-slot schedulability
  query goes through a frozenset-keyed
  :class:`~repro.solvers.common.FeasibilityCache`, so the many branches
  that reconsider the same slot content pay for one analysis.
* **Monotone conflict pruning** — slot schedulability only degrades as
  sharers are added, so two applications that cannot share a slot
  *pairwise* can never share one.  A greedy clique in the pairwise
  conflict graph yields (a) a lower bound on the optimum and (b) a
  symmetry break: the clique members are pre-committed to distinct
  slots, eliminating the slot-permutation orbit of every solution.
* **Incumbent pruning** — a first-fit solution (computed through the
  same cache) bounds the search from above; branches that cannot beat
  it are cut, and opening a slot that would merely tie is never tried.
* **Most-constrained-first ordering** — remaining applications are
  branched on in decreasing conflict degree, failing infeasible
  subtrees near the root.

Slot feasibility is order-independent (the analysis re-derives
priorities from deadlines), so the search may branch in any order
without losing solutions.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

from repro.core.allocation import AllocationResult
from repro.core.schedulability import AnalyzedApplication
from repro.core.timing_params import priority_order
from repro.solvers.common import (
    FeasibilityCache,
    finalize_slots,
    greedy_first_fit_indices,
)
from repro.solvers.registry import register_allocator
from repro.solvers.types import InfeasibleAllocationError, InstanceTooLargeError

#: Default instance-size ceiling.  Branch-and-bound remains exponential
#: in the worst case; beyond this, use the `anneal` heuristic.
MAX_APPS = 24


def _greedy_conflict_clique(
    conflicts: List[FrozenSet[int]], n: int
) -> List[int]:
    """A large (not necessarily maximum) clique of pairwise conflicts.

    Tries a greedy extension from every vertex, seeded in decreasing
    conflict degree, and keeps the best.  Cheap (O(n^2) set probes) and
    effective: the clique size lower-bounds the optimal slot count.
    """
    by_degree = sorted(range(n), key=lambda i: (-len(conflicts[i]), i))
    best: List[int] = []
    for seed in by_degree:
        clique = [seed]
        for candidate in by_degree:
            if candidate != seed and all(
                candidate in conflicts[member] for member in clique
            ):
                clique.append(candidate)
        if len(clique) > len(best):
            best = clique
    return best


@register_allocator(
    "branch-and-bound",
    summary="exact minimum-slot search: conflict cliques, memoized "
    "feasibility, incumbent pruning",
    optimal=True,
    complexity="exponential worst case, heavily pruned",
    max_apps=MAX_APPS,
)
def branch_and_bound(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_apps: int = MAX_APPS,
) -> AllocationResult:
    """Provably minimum TT-slot allocation for mid-size instances.

    Returns the same slot count as the exhaustive ``optimal`` backend on
    every instance both can solve, and scales to ~20+ applications.  The
    result's ``stats`` record the search effort (nodes, bounds) and the
    feasibility cache's hit rate.

    Raises
    ------
    InstanceTooLargeError
        If ``len(apps) > max_apps``.
    InfeasibleAllocationError
        If some application misses its deadline even on a dedicated slot.
    """
    ordered = list(priority_order(apps))
    n = len(ordered)
    if n > max_apps:
        raise InstanceTooLargeError(
            f"branch-and-bound is exponential in the worst case; refusing "
            f"{n} apps (max_apps={max_apps}); use the 'anneal' allocator "
            "for large fleets"
        )
    cache = FeasibilityCache(ordered, method)
    if n == 0:
        return finalize_slots([], method, stats={"feasibility_cache": cache.stats()})

    for index, app in enumerate(ordered):
        if not cache.schedulable(frozenset((index,))):
            raise InfeasibleAllocationError(
                f"application {app.name} cannot meet its deadline even on "
                "a dedicated TT slot"
            )

    # Pairwise conflict graph (monotonicity makes these hard exclusions).
    conflicts: List[set] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if not cache.schedulable(frozenset((i, j))):
                conflicts[i].add(j)
                conflicts[j].add(i)
    conflict_sets = [frozenset(c) for c in conflicts]

    incumbent = greedy_first_fit_indices(cache, range(n))
    best_slots = [list(slot) for slot in incumbent]
    best_count = len(best_slots)

    clique = _greedy_conflict_clique(conflict_sets, n)
    lower_bound = max(len(clique), 1)

    nodes = 0
    if lower_bound < best_count:
        # Symmetry break: clique members must occupy pairwise-distinct
        # slots in every feasible solution, so fix them up front.
        slots: List[List[int]] = [[member] for member in clique]
        in_clique = set(clique)
        remaining = sorted(
            (i for i in range(n) if i not in in_clique),
            key=lambda i: (-len(conflict_sets[i]), i),
        )

        def dfs(position: int) -> None:
            nonlocal best_slots, best_count, nodes
            nodes += 1
            if len(slots) >= best_count:
                return  # cannot improve on the incumbent
            if position == len(remaining):
                best_slots = [list(slot) for slot in slots]
                best_count = len(slots)
                return
            index = remaining[position]
            conflict = conflict_sets[index]
            for slot in slots:
                if conflict.isdisjoint(slot) and cache.schedulable(
                    frozenset(slot) | {index}
                ):
                    slot.append(index)
                    dfs(position + 1)
                    slot.pop()
                    if best_count <= lower_bound:
                        return  # proved optimal; unwind
            if len(slots) + 1 < best_count:
                slots.append([index])
                dfs(position + 1)
                slots.pop()

        dfs(0)

    # Deterministic presentation: apps by priority inside each slot,
    # slots by their highest-priority member.
    packed = [sorted(slot) for slot in best_slots]
    packed.sort(key=lambda slot: slot[0])
    stats = {
        "allocator": "branch-and-bound",
        "nodes": nodes,
        "lower_bound": lower_bound,
        "incumbent_slot_count": len(incumbent),
        "optimal_slot_count": best_count,
        "conflict_edges": sum(len(c) for c in conflict_sets) // 2,
        "feasibility_cache": cache.stats(),
    }
    return finalize_slots(cache.slots_of(packed), method, stats=stats)


__all__ = ["MAX_APPS", "branch_and_bound"]
