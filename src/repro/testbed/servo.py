"""Simulated servo-motor rig (substitute for the paper's Figure 2 hardware).

The rig is an inverted rigid stick with an end mass, driven by a servo
motor whose amplifier saturates at ``max_torque``.  The control loop runs
at the paper's ``h = 20 ms``; the sensor-to-actuator delay is 0.7 ms when
the control message travels in a TT slot and up to 20 ms over ET
communication.  Between sampling instants the nonlinear dynamics

    J * theta'' = m g l sin(theta) - b theta' + tau

are integrated with classic RK4 at a configurable substep count.  The
input torque follows the zero-order-hold-with-delay semantics of paper
Eq. 1: during ``[t_k, t_k + d)`` the previous torque is still applied.

The default configuration (:func:`default_servo_testbed`) is tuned so the
pure-mode response times land on the paper's measured values:
``xi_TT = 0.68 s`` and ``xi_ET ~ 2.2 s`` (paper: 2.16 s), with the
characteristic non-monotonic dwell/wait relation of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.controller import ModeController, design_mode_controller
from repro.control.plants import PlantDefinition, servo_rig
from repro.control.pole_placement import design_mode_controller_poles
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class ServoRigConfig:
    """Physical parameters of the simulated rig.

    Defaults mirror the paper's setup: a 300 g end mass on a rigid stick,
    h = 20 ms sampling, 0.7 ms TT delay, 20 ms worst-case ET delay,
    threshold ``Eth = 0.1`` and a 45 degree initial displacement.
    """

    mass: float = 0.3
    length: float = 0.85
    damping: float = 0.012
    gravity: float = 9.81
    max_torque: float = 4.0
    period: float = 0.020
    tt_delay: float = 0.0007
    et_delay: float = 0.020
    threshold: float = 0.1
    disturbance_angle: float = np.deg2rad(45.0)
    substeps: int = 20
    encoder_counts: Optional[int] = None

    def __post_init__(self):
        for name in ("mass", "length", "gravity", "max_torque", "period"):
            check_positive(getattr(self, name), name)
        check_nonnegative(self.damping, "damping")
        check_nonnegative(self.tt_delay, "tt_delay")
        if not self.tt_delay < self.et_delay <= self.period + 1e-12:
            raise ValueError(
                "expected tt_delay < et_delay <= period; got "
                f"tt_delay={self.tt_delay}, et_delay={self.et_delay}, period={self.period}"
            )
        check_positive(self.threshold, "threshold")
        if self.substeps < 1:
            raise ValueError("substeps must be >= 1")
        if self.encoder_counts is not None and self.encoder_counts < 8:
            raise ValueError("encoder_counts must be >= 8 when given")

    @property
    def inertia(self) -> float:
        """End-mass moment of inertia ``J = m l^2``."""
        return self.mass * self.length**2

    def plant(self) -> PlantDefinition:
        """Linearised plant definition matching this rig."""
        return servo_rig(
            mass=self.mass,
            length=self.length,
            damping=self.damping,
            gravity=self.gravity,
        )


class NonlinearServoRig:
    """Continuous-time nonlinear rig integrated with RK4.

    State is ``[theta, omega]`` (shaft angle from upright, angular
    velocity).  The only public mutators are :meth:`reset` and
    :meth:`advance`; reading :attr:`state` never perturbs the simulation.
    """

    def __init__(self, config: ServoRigConfig):
        self.config = config
        self._state = np.zeros(2)

    @property
    def state(self) -> np.ndarray:
        """Copy of the true state ``[theta, omega]``."""
        return self._state.copy()

    def measure(self) -> np.ndarray:
        """Sensor reading, with optional encoder quantisation of theta."""
        state = self._state.copy()
        counts = self.config.encoder_counts
        if counts is not None:
            resolution = 2.0 * np.pi / counts
            state[0] = np.round(state[0] / resolution) * resolution
        return state

    def reset(self, theta: float, omega: float = 0.0) -> None:
        self._state = np.array([float(theta), float(omega)])

    def saturate(self, torque: float) -> float:
        """Clamp a commanded torque to the amplifier limits."""
        limit = self.config.max_torque
        return float(np.clip(torque, -limit, limit))

    def _derivative(self, state: np.ndarray, torque: float) -> np.ndarray:
        cfg = self.config
        theta, omega = state
        alpha = (
            (cfg.gravity / cfg.length) * np.sin(theta)
            - (cfg.damping / cfg.inertia) * omega
            + torque / cfg.inertia
        )
        return np.array([omega, alpha])

    def _rk4_step(self, state: np.ndarray, torque: float, dt: float) -> np.ndarray:
        k1 = self._derivative(state, torque)
        k2 = self._derivative(state + 0.5 * dt * k1, torque)
        k3 = self._derivative(state + 0.5 * dt * k2, torque)
        k4 = self._derivative(state + dt * k3, torque)
        return state + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)

    def advance(self, duration: float, torque: float) -> None:
        """Integrate the rig forward by ``duration`` at constant torque."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if duration == 0:
            return
        steps = max(1, int(round(self.config.substeps * duration / self.config.period)))
        dt = duration / steps
        state = self._state
        saturated = self.saturate(torque)
        for _ in range(steps):
            state = self._rk4_step(state, saturated, dt)
        self._state = state


@dataclass(frozen=True)
class ServoTestbed:
    """The rig plus its two mode controllers (the full Figure 2 setup)."""

    config: ServoRigConfig
    et_controller: ModeController
    tt_controller: ModeController

    def make_rig(self) -> NonlinearServoRig:
        rig = NonlinearServoRig(self.config)
        rig.reset(self.config.disturbance_angle, 0.0)
        return rig

    def run_switched(
        self,
        wait_samples: int,
        max_samples: int = 4000,
        rig: Optional[NonlinearServoRig] = None,
    ) -> np.ndarray:
        """Simulate one disturbance rejection with a fixed ET-to-TT switch.

        The loop runs in ET mode for ``wait_samples`` sampling periods and
        in TT mode afterwards (pass ``wait_samples >= max_samples`` for a
        pure-ET run, ``0`` for pure TT).  Returns the norm ``||x[k]||`` at
        every sampling instant, length ``max_samples``.
        """
        if wait_samples < 0:
            raise ValueError(f"wait_samples must be non-negative, got {wait_samples}")
        cfg = self.config
        if rig is None:
            rig = self.make_rig()
        norms = np.empty(max_samples)
        u_prev = 0.0
        for k in range(max_samples):
            x = rig.measure()
            norms[k] = float(np.hypot(x[0], x[1]))
            in_et = k < wait_samples
            controller = self.et_controller if in_et else self.tt_controller
            delay = cfg.et_delay if in_et else cfg.tt_delay
            u_new = rig.saturate(float(controller.control(x, [u_prev])[0]))
            # ZOH with delay: previous torque until the new input lands.
            rig.advance(delay, u_prev)
            rig.advance(cfg.period - delay, u_new)
            u_prev = u_new
        return norms

    def settle_sample(self, norms: np.ndarray) -> Optional[int]:
        """First sample index after which the norm stays <= threshold."""
        above = np.flatnonzero(norms > self.config.threshold)
        if above.size == 0:
            return 0
        if above[-1] == norms.size - 1:
            return None
        return int(above[-1] + 1)

    def response_time(self, wait_samples: int, max_samples: int = 4000) -> float:
        """Settling time (seconds) for a given switch point.

        Raises
        ------
        RuntimeError
            If the run does not settle within ``max_samples``.
        """
        norms = self.run_switched(wait_samples, max_samples=max_samples)
        settle = self.settle_sample(norms)
        if settle is None:
            raise RuntimeError(
                f"rig did not settle within {max_samples} samples "
                f"(wait_samples={wait_samples})"
            )
        return settle * self.config.period


# ET closed-loop poles for the default testbed: a lightly damped pair
# (magnitude 0.94, angle 0.30 rad) plus a fast real pole for the held
# input.  Chosen so the pure-ET response time lands near the paper's
# measured 2.16 s while the swing builds enough momentum to produce the
# non-monotonic dwell/wait relation of Figure 3.
DEFAULT_ET_POLES = (
    0.94 * np.exp(1j * 0.30),
    0.94 * np.exp(-1j * 0.30),
    0.2,
)

# TT LQR weights for the default testbed: aggressive enough that the
# pure-TT response time matches the paper's measured 0.68 s.
DEFAULT_TT_Q = np.diag([40.0, 0.4])
DEFAULT_TT_R = np.array([[0.08]])


def default_servo_testbed(config: Optional[ServoRigConfig] = None) -> ServoTestbed:
    """Build the tuned testbed that reproduces the paper's Figure 3 shape."""
    if config is None:
        config = ServoRigConfig()
    plant = config.plant()
    et = design_mode_controller_poles(
        plant.model,
        period=config.period,
        delay=config.et_delay,
        poles=DEFAULT_ET_POLES,
    )
    tt = design_mode_controller(
        plant.model,
        period=config.period,
        delay=config.tt_delay,
        q=DEFAULT_TT_Q,
        r=DEFAULT_TT_R,
    )
    return ServoTestbed(config=config, et_controller=et, tt_controller=tt)


__all__ = [
    "DEFAULT_ET_POLES",
    "DEFAULT_TT_Q",
    "DEFAULT_TT_R",
    "NonlinearServoRig",
    "ServoRigConfig",
    "ServoTestbed",
    "default_servo_testbed",
]
