"""Hardware-substitute testbed (the paper's Figure 2 servo rig).

The paper measures its Figure 3 dwell/wait relation on a physical servo
motor rig.  We have no such hardware, so this package provides a
high-fidelity *simulated* rig: nonlinear pendulum-on-motor-shaft dynamics,
torque saturation of the servo amplifier, optional encoder quantisation,
zero-order-hold actuation with mode-dependent sensor-to-actuator delay,
and Runge-Kutta integration between sampling instants.

DESIGN.md records the substitution; the relevant behaviours (the
non-monotonic dwell/wait relation and the TT/ET response-time gap) are
properties of the closed-loop rig, which this simulator reproduces.
"""

from repro.testbed.servo import (
    NonlinearServoRig,
    ServoRigConfig,
    ServoTestbed,
    default_servo_testbed,
)

__all__ = [
    "NonlinearServoRig",
    "ServoRigConfig",
    "ServoTestbed",
    "default_servo_testbed",
]
