"""Baseline analyses the paper compares against.

* :mod:`repro.baselines.can_rta` — iterative CAN response-time analysis
  (Davis et al., the paper's reference [6]);
* the monotonic dwell models and dedicated-slot allocation live in
  :mod:`repro.core` (they share all machinery with the contribution).
"""

from repro.baselines.can_rta import (
    CanMessage,
    CanResponse,
    analyze_message_set,
    bus_utilization,
    worst_case_response_time,
)

__all__ = [
    "CanMessage",
    "CanResponse",
    "analyze_message_set",
    "bus_utilization",
    "worst_case_response_time",
]
