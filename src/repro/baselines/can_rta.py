"""CAN-style iterative response-time analysis (Davis et al. 2007).

The paper's Related Work contrasts its closed-form wait-time bound with
the classical iterative approach used for Controller Area Network
schedulability (its reference [6]): fixed-priority non-preemptive
messages, worst-case response found by fixed-point iteration with no a
priori knowledge of whether a bound exists.  We implement that analysis
both as a baseline comparator (benchmark E7) and as a usable CAN message
RTA in its own right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class CanMessage:
    """A periodic CAN message stream.

    Attributes
    ----------
    name:
        Message identifier.
    period:
        Minimum inter-arrival time (seconds).
    transmission:
        Worst-case wire time ``C`` (seconds).
    priority:
        Smaller = higher priority (CAN arbitration order).
    jitter:
        Release jitter ``J`` (seconds).
    deadline:
        Relative deadline; defaults to the period.
    """

    name: str
    period: float
    transmission: float
    priority: int
    jitter: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self):
        check_positive(self.period, "period")
        check_positive(self.transmission, "transmission")
        check_nonnegative(self.jitter, "jitter")
        if self.deadline is not None:
            check_positive(self.deadline, "deadline")

    @property
    def effective_deadline(self) -> float:
        return self.deadline if self.deadline is not None else self.period


@dataclass(frozen=True)
class CanResponse:
    """Worst-case response analysis result for one message."""

    name: str
    queuing_delay: float
    response_time: float
    iterations: int
    schedulable: bool


def worst_case_response_time(
    message: CanMessage,
    others: Sequence[CanMessage],
    max_iterations: int = 100_000,
) -> CanResponse:
    """Iterative non-preemptive fixed-priority response-time analysis.

    ``w(l+1) = B + sum_{j in hp} ceil((w(l) + J_j + tau) / T_j) C_j``
    with blocking ``B`` equal to the longest lower-priority transmission;
    ``R = w + C``.  Iteration stops at a fixed point or when the response
    exceeds the deadline (reported unschedulable) — exactly the behaviour
    the paper criticises: the iteration itself never proves a bound
    exists.
    """
    higher = [m for m in others if m.priority < message.priority]
    lower = [m for m in others if m.priority > message.priority]
    blocking = max((m.transmission for m in lower), default=0.0)
    tau = min((m.transmission for m in [message, *others]), default=0.0) * 0.0
    queuing = blocking
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        interference = sum(
            math.ceil((queuing + m.jitter + tau) / m.period + 1e-12) * m.transmission
            for m in higher
        )
        next_queuing = blocking + interference
        if abs(next_queuing - queuing) <= 1e-15:
            queuing = next_queuing
            break
        queuing = next_queuing
        if queuing + message.transmission > message.effective_deadline:
            return CanResponse(
                name=message.name,
                queuing_delay=queuing,
                response_time=queuing + message.transmission,
                iterations=iterations,
                schedulable=False,
            )
    response = queuing + message.transmission
    return CanResponse(
        name=message.name,
        queuing_delay=queuing,
        response_time=response,
        iterations=iterations,
        schedulable=response <= message.effective_deadline + 1e-12,
    )


#: Worst-case non-payload bits of an 11-bit-identifier CAN data frame
#: (SOF, arbitration, control, CRC, ACK, EOF, interframe space), the
#: figure the co-simulable bus model charges per frame.
CAN_FRAME_OVERHEAD_BITS = 47


def frame_transmission_time(
    payload_bits: int,
    bit_time: float,
    overhead_bits: int = CAN_FRAME_OVERHEAD_BITS,
) -> float:
    """Wire time ``C`` of one frame: ``(overhead + payload) * bit_time``."""
    check_positive(bit_time, "bit_time")
    check_nonnegative(payload_bits, "payload_bits")
    return (overhead_bits + payload_bits) * bit_time


def message_from_frame(
    spec,
    period: float,
    *,
    bit_time: float,
    overhead_bits: int = CAN_FRAME_OVERHEAD_BITS,
    jitter: float = 0.0,
    deadline: Optional[float] = None,
) -> CanMessage:
    """The RTA view of a co-simulated CAN frame.

    ``spec`` is a :class:`~repro.flexray.frame.FrameSpec` (duck-typed:
    ``frame_id``, ``payload_bits``, ``sender``).  Priority is the frame
    identifier (CAN arbitration order) and the transmission time is
    exactly what :class:`~repro.sim.network.can.CanBusNetwork` charges,
    so simulated waits are directly comparable to the analytic bound.
    """
    return CanMessage(
        name=spec.sender or f"frame-{spec.frame_id}",
        period=period,
        transmission=frame_transmission_time(
            spec.payload_bits, bit_time, overhead_bits
        ),
        priority=spec.frame_id,
        jitter=jitter,
        deadline=deadline,
    )


def analyze_message_set(messages: Sequence[CanMessage]) -> List[CanResponse]:
    """Response-time analysis of every message against the others."""
    return [
        worst_case_response_time(message, [m for m in messages if m is not message])
        for message in messages
    ]


def bus_utilization(messages: Sequence[CanMessage]) -> float:
    """Total bus utilisation of the message set."""
    return sum(m.transmission / m.period for m in messages)


__all__ = [
    "CAN_FRAME_OVERHEAD_BITS",
    "CanMessage",
    "CanResponse",
    "analyze_message_set",
    "bus_utilization",
    "frame_transmission_time",
    "message_from_frame",
    "worst_case_response_time",
]
