"""Non-preemptive deadline-priority arbitration of shared TT slots.

Implements the runtime side of the paper's dynamic resource allocation
(Figure 1): an application whose state norm exceeds ``Eth`` requests its
allocated TT slot; the slot is granted to the highest-priority requester
(shortest deadline) once free; the holder keeps the slot without
preemption until it returns to the steady state and releases it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class SlotClient:
    """An application from the arbiter's point of view."""

    name: str
    deadline: float

    @property
    def priority_key(self):
        """Smaller = higher priority (deadline, then name for ties)."""
        return (self.deadline, self.name)


@dataclass
class SlotState:
    """Arbitration state of one shared TT slot."""

    holder: Optional[SlotClient] = None
    requesters: List[SlotClient] = field(default_factory=list)

    def pending(self) -> List[str]:
        return [client.name for client in sorted(self.requesters, key=lambda c: c.priority_key)]


class TTSlotArbiter:
    """Arbitrates a fixed set of TT slots among registered applications.

    Each application is registered against exactly one slot (the
    allocation computed offline decides which).  All state changes happen
    through :meth:`request`, :meth:`release` and :meth:`grant_pending`,
    which the co-simulator calls at sampling boundaries.
    """

    def __init__(self):
        self._slots: Dict[int, SlotState] = {}
        self._client_slot: Dict[str, int] = {}
        self._clients: Dict[str, SlotClient] = {}

    def register(self, client: SlotClient, slot: int) -> None:
        """Assign ``client`` to contend for ``slot``.

        Raises
        ------
        ValueError
            If the client name is already registered.
        """
        if client.name in self._clients:
            raise ValueError(f"client {client.name!r} is already registered")
        self._slots.setdefault(slot, SlotState())
        self._client_slot[client.name] = slot
        self._clients[client.name] = client

    @property
    def slots(self) -> Dict[int, SlotState]:
        return self._slots

    def slot_of(self, name: str) -> int:
        try:
            return self._client_slot[name]
        except KeyError:
            raise KeyError(f"client {name!r} is not registered") from None

    def holder_of_slot(self, slot: int) -> Optional[str]:
        state = self._slots.get(slot)
        return state.holder.name if state and state.holder else None

    def holds(self, name: str) -> bool:
        """Whether the named client currently holds its slot."""
        state = self._slots[self.slot_of(name)]
        return state.holder is not None and state.holder.name == name

    def request(self, name: str) -> bool:
        """Ask for the client's slot; returns True if granted immediately.

        A request while already holding is a no-op returning True; a
        duplicate queued request is collapsed.
        """
        client = self._clients[name]
        state = self._slots[self.slot_of(name)]
        if state.holder is not None:
            if state.holder.name == name:
                return True
            if all(c.name != name for c in state.requesters):
                state.requesters.append(client)
            return False
        state.holder = client
        state.requesters = [c for c in state.requesters if c.name != name]
        return True

    def release(self, name: str) -> None:
        """Give the slot back (no-op unless ``name`` is the holder).

        The slot is *not* immediately handed to a waiting requester; the
        hand-over happens at the next :meth:`grant_pending` call, which
        the co-simulator invokes at sampling boundaries — matching the
        sample-aligned switching of the paper's scheme.
        """
        state = self._slots[self.slot_of(name)]
        if state.holder is not None and state.holder.name == name:
            state.holder = None

    def withdraw(self, name: str) -> None:
        """Remove a queued request (e.g. the state settled while waiting)."""
        state = self._slots[self.slot_of(name)]
        state.requesters = [c for c in state.requesters if c.name != name]

    def grant_pending(self) -> List[str]:
        """Hand every free slot to its highest-priority requester.

        Returns the names of clients granted in this pass.
        """
        granted = []
        for state in self._slots.values():
            if state.holder is not None or not state.requesters:
                continue
            state.requesters.sort(key=lambda c: c.priority_key)
            state.holder = state.requesters.pop(0)
            granted.append(state.holder.name)
        return granted


__all__ = ["SlotClient", "SlotState", "TTSlotArbiter"]
