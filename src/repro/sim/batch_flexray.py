"""Deterministic-FlexRay schedule precomputation for the batch kernel.

The FlexRay static segment is TDMA: for a loss-free static-slot fleet
every grant and transmission instant is computable ahead of time from
the slot table alone — nothing on the bus depends on anything the
schedule walk cannot see.  This module exploits that determinism to
extend the :mod:`repro.sim.batch` fast path to FlexRay fleets:

* :func:`flexray_deterministic` is the capability check — a
  :class:`~repro.sim.network.FlexRayNetwork` qualifies iff ``loss_rate ==
  0`` (no RNG draws), there is no background traffic contending for the
  dynamic segment, and the bus is a pristine, unmodified
  :class:`~repro.flexray.bus.FlexRayBus` (exact types, cycle 0, empty
  queues, no pre-assigned slots — every grant then flows through the
  arbiter with the default every-cycle
  :class:`~repro.flexray.static_segment.CycleFilter`).  Anything else
  falls back to the event kernel, recorded in ``kernel_used``.
* :class:`_FlexRaySchedule` walks the static-segment slot table and the
  dynamic-segment minislot counter exactly like
  :meth:`~repro.flexray.bus.FlexRayBus.run_cycle`, but makes every
  *decision* (cycle advance, slot-start grant eligibility, minislot
  head eligibility) on the event kernel's **integer-nanosecond grid**
  while producing every delivery *value* with the bus's exact float
  expressions.  Cycles with nothing queued are skipped arithmetically
  (statistics stay faithful), which is where the fast path earns its
  speedup: the event kernel walks every slot of every cycle through the
  full object machinery.
* :class:`_FlexRayBatchKernel` plugs the schedule walk into the batch
  kernel's precomputed tick grids; traces are bitwise identical to the
  event and legacy kernels (asserted by the parity and property tests
  in ``tests/test_cosim_batch_flexray.py``).

Why integer nanoseconds are safe here: every compared instant —
``k * period`` releases, ``cycle * L + slot * Psi`` slot starts,
dynamic-segment starts, cycle boundaries — lies on a microsecond-or-
coarser design grid, with float noise bounded by a few ulps (well under
``1e-12`` s for any realistic horizon).  The bus's ``1e-12``-epsilon
comparisons and the round-to-nearest-nanosecond comparisons therefore
decide identically with the exact-rational grid, so the mirror is
bitwise faithful *and* honours the QA003 int-ns contract.

After a run the mirror's counters are written back to the real
``network.bus.statistics`` (cycles, deliveries, unused slots) and
``network.clamped``, and the bus clock is advanced, so downstream
consumers (the multi-rate bus-sharing tests, the cosim artifact's
``loss`` block) see the same numbers the event kernel would have left.
The bus's slot table and message queues themselves are not replayed —
the schedule walk owns them for the duration of the run.
"""

from __future__ import annotations

from math import sqrt
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.flexray.bus import FlexRayBus
from repro.flexray.dynamic_segment import DynamicSegment
from repro.flexray.static_segment import StaticSchedule
from repro.sim.batch import _BatchKernel
from repro.sim.runtime import CommState
from repro.sim.stepper import delay_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import FlexRayNetwork


def flexray_deterministic(network: "FlexRayNetwork") -> bool:
    """Whether this FlexRay network's schedule is fully precomputable.

    True iff nothing non-deterministic (loss RNG) or outside the slot
    table (background dynamic-segment traffic, pre-warmed bus state,
    subclassed bus components) can influence a delivery instant.  The
    pristine-bus requirements pin the one configuration the schedule
    mirror models: ownership driven entirely by the arbiter, with the
    default every-cycle cycle filter.
    """
    if network.loss_rate != 0.0 or network.traffic is not None:
        return False
    bus = network.bus
    if type(bus) is not FlexRayBus:
        return False
    if type(bus.static) is not StaticSchedule:
        return False
    if type(bus.dynamic) is not DynamicSegment:
        return False
    if bus.current_cycle != 0 or bus._tt_queues or network._inflight:
        return False
    if bus.dynamic.pending() != 0:
        return False
    # No pre-assigned slots: a hand-assigned slot could carry a
    # non-default cycle filter the mirror does not model.
    if len(bus.static.free_slots()) != bus.config.static_slots:
        return False
    return True


class _FlexRaySchedule:
    """Slot-table walk emitting grant/transmit instants on the ns grid.

    Mirrors :meth:`FlexRayBus.run_cycle` message for message.  Queued
    entries are ``(release_float, release_ns, app_index)`` tuples; every
    delivery float is produced by the same expressions the bus uses
    (``cycle * L + slot * Psi`` slot-window starts plus ``Psi`` for TT,
    ``segment_start + minislot * psi`` for ET), so the values handed to
    the kernel are bitwise identical to the event kernel's.
    """

    def __init__(self, bus: FlexRayBus, frames: List) -> None:
        cfg = bus.config
        self.cycle_length = cfg.cycle_length
        self.slot_length = cfg.static_slot_length
        self.minislot_length = cfg.minislot_length
        self.static_segment = cfg.static_segment_length
        self.total_minislots = cfg.minislots
        #: per slot, the same ``slot * Psi`` product the bus computes in
        #: :meth:`FlexRayConfig.static_slot_window`.
        self.slot_offsets = [
            slot * cfg.static_slot_length for slot in range(cfg.static_slots)
        ]
        self.cycle = 0
        #: slot -> owning frame id (arbiter-driven, every-cycle filter).
        self.slot_frame: Dict[int, int] = {}
        self.frame_slot: Dict[int, int] = {}
        #: slot -> FIFO of queued TT entries; the first *eligible* entry
        #: transmits, removed mid-queue like the bus's ``queue.remove``.
        self.tt_queues: Dict[int, List[Tuple[float, int, int]]] = {}
        #: frame id -> FIFO of queued ET entries.
        self.et_queues: Dict[int, List[Tuple[float, int, int]]] = {}
        #: highest frame id ever enqueued on the dynamic segment — the
        #: bus's ``max(self._queues.keys())`` ranges over keys that
        #: persist even after their queue drains.
        self.et_max_id = 0
        #: frame id -> minislots needed, via the real FrameSpec method.
        self.minislots_of = {
            spec.frame_id: spec.minislots_needed(cfg.minislot_length, bus.bit_time)
            for spec in frames
        }
        self.pending = 0
        # BusStatistics mirror, written back after the run.
        self.cycles = 0
        self.tt_deliveries = 0
        self.et_deliveries = 0
        self.unused_static_slots = 0

    # -- arbiter-driven ownership -----------------------------------------

    def on_slot_change(self, slot: int, frame_id: Optional[int]) -> None:
        """Mirror of ``FlexRayNetwork.on_slot_change``: a release drops
        the slot's queued messages; a grant re-homes it to ``frame_id``."""
        dropped = self.tt_queues.pop(slot, None)
        if dropped:
            self.pending -= len(dropped)
        old = self.slot_frame.pop(slot, None)
        if old is not None:
            del self.frame_slot[old]
        if frame_id is not None:
            self.slot_frame[slot] = frame_id
            self.frame_slot[frame_id] = slot

    # -- submissions -------------------------------------------------------

    def submit(self, index: int, uses_tt: bool, frame_id: int, release: float) -> None:
        entry = (release, round(release * 1e9), index)
        if uses_tt:
            slot = self.frame_slot.get(frame_id)
            if slot is None:  # pragma: no cover - ownership precedes submit
                raise ValueError(
                    f"frame {frame_id} owns no static slot; "
                    "submit over the dynamic segment instead"
                )
            self.tt_queues.setdefault(slot, []).append(entry)
        else:
            self.et_queues.setdefault(frame_id, []).append(entry)
            if frame_id > self.et_max_id:
                self.et_max_id = frame_id
        self.pending += 1

    # -- the schedule walk -------------------------------------------------

    def advance_to(self, target: float) -> List[Tuple[int, float, float]]:
        """Run whole cycles up to ``target``; return deliveries as
        ``(app_index, release_float, delivery_float)``.

        Same cycle-count decision as ``FlexRayBus.advance_to``, made on
        the ns grid; empty cycles are accounted arithmetically.
        """
        target_ns = round(target * 1e9)
        out: List[Tuple[int, float, float]] = []
        cycle = self.cycle
        length = self.cycle_length
        while True:
            cycle_start = cycle * length
            if round((cycle_start + length) * 1e9) > target_ns:
                break
            if self.pending:
                self._run_cycle(cycle_start, out)
            else:
                # Nothing queued anywhere: every owned slot goes unused
                # and the dynamic segment idles — pure accounting.
                self.unused_static_slots += len(self.slot_frame)
            self.cycles += 1
            cycle += 1
        self.cycle = cycle
        return out

    def _run_cycle(
        self, cycle_start: float, out: List[Tuple[int, float, float]]
    ) -> None:
        slot_length = self.slot_length
        tt_queues = self.tt_queues
        for slot in self.slot_frame:
            queue = tt_queues.get(slot)
            ready = None
            if queue:
                window_start = cycle_start + self.slot_offsets[slot]
                start_ns = round(window_start * 1e9)
                for position, entry in enumerate(queue):
                    if entry[1] <= start_ns:
                        ready = position
                        break
            if ready is None:
                # Data missed the slot start: the whole slot goes unused.
                self.unused_static_slots += 1
                continue
            release, _release_ns, index = queue.pop(ready)
            self.pending -= 1
            out.append((index, release, window_start + slot_length))
            self.tt_deliveries += 1
        # Dynamic segment: lockstep minislot counter over frame ids.
        segment_start = cycle_start + self.static_segment
        segment_ns = round(segment_start * 1e9)
        minislot = 0
        counter = 1
        max_id = self.et_max_id
        total = self.total_minislots
        psi = self.minislot_length
        et_queues = self.et_queues
        while minislot < total and counter <= max_id:
            queue = et_queues.get(counter)
            if not queue or queue[0][1] > segment_ns:
                minislot += 1
                counter += 1
                continue
            needed = self.minislots_of[counter]
            if minislot + needed > total:
                # pLatestTx: cannot finish this cycle; hold the queue.
                minislot += 1
                counter += 1
                continue
            minislot += needed
            counter += 1
            release, _release_ns, index = queue.pop(0)
            self.pending -= 1
            out.append((index, release, segment_start + minislot * psi))
            self.et_deliveries += 1


class _FlexRayBatchKernel(_BatchKernel):
    """Batch kernel over a precomputed deterministic FlexRay schedule.

    Reuses the analytic batch kernel's tick grids, hoisted operators and
    plant-sweep machinery; only delay resolution differs — instead of
    per-mode constants, each barrier submits the roster's messages to
    the :class:`_FlexRaySchedule` walk and reads the delivery instants
    back, exactly mirroring the event kernel's submit/advance sequence
    (eager: one full-interval advance per barrier; lazy: incremental
    advances with intervals resolved at the owner's next tick).
    """

    def _prepare_network(self) -> None:
        self.mirror = _FlexRaySchedule(
            self.sim.network.bus, [a.frame for a in self.apps]
        )
        self.frame_ids = [a.frame.frame_id for a in self.apps]
        self.app_slots = [a.slot for a in self.apps]
        self._clamped = 0

    def run(self):
        traces = super().run()
        # Write the schedule walk's accounting back to the real bus so
        # statistics consumers see what the event kernel would report.
        mirror = self.mirror
        network = self.sim.network
        stats = network.bus.statistics
        stats.cycles += mirror.cycles
        stats.tt_deliveries += mirror.tt_deliveries
        stats.et_deliveries += mirror.et_deliveries
        stats.unused_static_slots += mirror.unused_static_slots
        network.bus._cycle = mirror.cycle
        network.clamped += self._clamped
        return traces

    def _propagate_slots(self, slot_owner: Dict[int, Optional[str]]) -> None:
        """The event kernel's transmit-phase ownership hand-over, against
        the schedule mirror instead of the live bus."""
        arbiter = self.sim.arbiter
        mirror = self.mirror
        names = self.names
        for i, slot in enumerate(self.app_slots):
            holder = arbiter.holder_of_slot(slot)
            if slot_owner[slot] != holder:
                frame_id = None
                if holder is not None:
                    frame_id = self.frame_ids[names.index(holder)]
                mirror.on_slot_change(slot, frame_id)
                slot_owner[slot] = holder

    def _run_eager(self) -> None:
        """Shared-period sweep: the event kernel's eager barrier sequence
        (disturb, grant, update, re-grant, hand over slots, control,
        submit, advance one interval, equalize, sweep) with the schedule
        walk replacing the live bus."""
        sim = self.sim
        arbiter = sim.arbiter
        mirror = self.mirror
        n = self.n
        app_range = range(n)
        period = self.periods[0]
        steps = self.steps[0]
        states = self.states
        held = self.held
        runtimes = self.runtimes
        appenders = self.appenders
        neg_dots = [(et.dot, tt.dot) for et, tt in self.neg_gains]
        designs = self.designs
        equalize = sim.equalize_delays
        thresholds = [rt.threshold for rt in runtimes]
        fastable = [rt.tt_allowed for rt in runtimes]
        dist_state = self.dist_state
        names = self.names
        frame_ids = self.frame_ids
        group_of = self.group_of
        scalar_control = self.scalar_control
        gain_groups = self.gain_groups
        idx_of = {name: i for i, name in enumerate(names)}
        et_steady = CommState.ET_STEADY
        tt_holding = CommState.TT_HOLDING
        waiting = CommState.WAITING
        concat = np.concatenate
        dist_steps: Dict[int, List[Tuple[int, object]]] = {}
        for i, by_k in enumerate(self.dist_at):
            for k, events in by_k.items():
                dist_steps.setdefault(k, []).extend((i, e) for e in events)
        slot_owner: Dict[int, Optional[str]] = {s: None for s in self.app_slots}
        norms = [0.0] * n
        comms: List[CommState] = [et_steady] * n
        modes = [0] * n
        us: List[Optional[np.ndarray]] = [None] * n
        token_mats: Dict[Tuple, Tuple] = {}
        violations = 0
        clamped = 0
        for k in range(steps):
            t = k * period
            events = dist_steps.get(k)
            if events is not None:
                for i, event in events:
                    states[i] = states[i] + event.magnitude * dist_state[i]
                    runtimes[i].on_disturbance(t)
            arbiter.grant_pending()
            self._compute_norms(norms)
            for i in app_range:
                norm = norms[i]
                rt = runtimes[i]
                if fastable[i] and rt.state is et_steady and norm <= thresholds[i]:
                    # update() is a no-op below threshold in ET_STEADY.
                    comms[i] = et_steady
                else:
                    comms[i] = rt.update(t, norm)
            for name in arbiter.grant_pending():
                i = idx_of[name]
                if runtimes[i].state is waiting:
                    comms[i] = runtimes[i].update(t, norms[i])
            self._propagate_slots(slot_owner)
            for i in app_range:
                mode = 1 if comms[i] is tt_holding else 0
                modes[i] = mode
                if scalar_control[i]:
                    us[i] = neg_dots[i][mode](concat((states[i], held[i])))
                mirror.submit(i, mode == 1, frame_ids[i], t)
            if gain_groups:
                self._apply_control_groups(modes, us)
            delays: Dict[int, float] = {}
            for index, release, delivery in mirror.advance_to(t + period):
                # Exact compare: a fresh delivery's release *is* this
                # barrier's float; a stale one is at least a period older.
                if release == t:
                    delays[index] = min(delivery - t, period)
            buckets: Dict[Tuple, List[int]] = {}
            for i in app_range:
                delay = delays.get(i)
                if delay is None:
                    # Missed the whole interval: hold the previous input.
                    delay = period
                    clamped += 1
                if equalize:
                    design = designs[i][modes[i]]
                    if delay <= design + 1e-12:
                        delay = design
                    else:
                        violations += 1
                append = appenders[i]
                append[0](t)
                append[1](norms[i])
                append[2](comms[i])
                append[3](delay)
                gid = group_of[i]
                token = (gid, delay_key(delay))
                if token not in token_mats:
                    token_mats[token] = self._token_mats(gid, delay)
                bucket = buckets.get(token)
                if bucket is None:
                    buckets[token] = [i]
                else:
                    bucket.append(i)
            self._sweep(buckets, token_mats, states, us, held)
            for i in app_range:
                held[i] = us[i]
        sim.jitter_violations += violations
        self._clamped += clamped
        final_time = steps * period
        for i in app_range:
            x = states[i]
            append = appenders[i]
            append[0](final_time)
            append[1](sqrt(x.dot(x)))
            append[2](runtimes[i].state)
            append[3](0.0)
            self.traces[names[i]].response_times = runtimes[i].response_times()

    def _run_lazy(self) -> None:
        """Multi-rate sweep: barriers on integer-ns timestamps; the
        schedule advances to each barrier's flush instant (the float
        time of the last event the event kernel pops there) and each
        interval resolves at the owner's next tick, matched by exact
        release-float equality."""
        sim = self.sim
        arbiter = sim.arbiter
        mirror = self.mirror
        equalize = sim.equalize_delays
        states = self.states
        held = self.held
        runtimes = self.runtimes
        appenders = self.appenders
        neg_dots = [(et.dot, tt.dot) for et, tt in self.neg_gains]
        designs = self.designs
        dist_at = self.dist_at
        dist_state = self.dist_state
        names = self.names
        frame_ids = self.frame_ids
        group_of = self.group_of
        periods = self.periods
        steps = self.steps
        idx_of = {name: i for i, name in enumerate(names)}
        tt_holding = CommState.TT_HOLDING
        waiting = CommState.WAITING
        concat = np.concatenate
        delay_lists = [self.traces[name].delays for name in names]
        times_f: List[List[float]] = []
        barriers: Dict[int, Tuple[List[Tuple[int, int]], List[int]]] = {}
        for i in range(self.n):
            grid = np.arange(steps[i] + 1, dtype=np.float64) * periods[i]
            ns = np.rint(grid * 1e9).astype(np.int64)
            times_f.append(grid.tolist())
            keys = ns.tolist()
            for k in range(steps[i]):
                barriers.setdefault(keys[k], ([], []))[0].append((i, k))
            barriers.setdefault(keys[steps[i]], ([], []))[1].append(i)
        slot_owner: Dict[int, Optional[str]] = {s: None for s in self.app_slots}
        #: per app: ``[u, release_float, mode, trace_index, delivery]``.
        pending: List[Optional[List]] = [None] * self.n
        lazy_tokens: Dict[Tuple, Tuple] = {}
        norms: Dict[int, float] = {}
        violations = 0
        clamped = 0
        for key in sorted(barriers):
            due, finals = barriers[key]
            flush = [times_f[i][k] for i, k in due]
            flush.extend(times_f[i][steps[i]] for i in finals)
            # 1. Advance the schedule to this barrier — the event kernel
            #    flushes at the float time of the *last* event popped,
            #    i.e. the max of the coincident k * period products —
            #    and match deliveries to in-flight intervals by exact
            #    release float (a stale one differs by a full period).
            for index, release, delivery in mirror.advance_to(max(flush)):
                record = pending[index]
                if record is not None and record[1] == release:
                    record[4] = delivery
            # 2. Resolve every interval ending at this barrier (the
            #    event kernel's _resolve: due first, then finals).
            buckets: Dict[Tuple, List[int]] = {}
            token_mats: Dict[Tuple, Tuple] = {}
            resolved: List[Tuple[int, np.ndarray]] = []
            us: Dict[int, np.ndarray] = {}
            for i in [*(i for i, _ in due), *finals]:
                record = pending[i]
                if record is None:
                    continue  # the very first tick has no interval behind it
                pending[i] = None
                u, release, mode, trace_index, delivery = record
                if delivery is None:
                    # Missed the whole interval: hold the previous input.
                    delay = periods[i]
                    clamped += 1
                else:
                    delay = min(delivery - release, periods[i])
                if equalize:
                    design = designs[i][mode]
                    if delay <= design + 1e-12:
                        delay = design
                    else:
                        violations += 1
                delay_lists[i][trace_index] = delay
                us[i] = u
                resolved.append((i, u))
                gid = group_of[i]
                token = (gid, delay_key(delay))
                if token not in token_mats:
                    mats = lazy_tokens.get(token)
                    if mats is None:
                        mats = self._token_mats(gid, delay)
                        lazy_tokens[token] = mats
                    token_mats[token] = mats
                bucket = buckets.get(token)
                if bucket is None:
                    buckets[token] = [i]
                else:
                    bucket.append(i)
            if resolved:
                self._sweep(buckets, token_mats, states, us, held)
                for i, u in resolved:
                    held[i] = u
            # 3. Horizon samples for applications finishing here.
            for i in finals:
                x = states[i]
                append = appenders[i]
                append[0](steps[i] * periods[i])
                append[1](sqrt(x @ x))
                append[2](runtimes[i].state)
                append[3](0.0)
                self.traces[names[i]].response_times = runtimes[i].response_times()
            if not due:
                continue
            # 4. Disturbances, arbitration and state machines.
            for i, k in due:
                events = dist_at[i].get(k)
                if events:
                    tick = times_f[i][k]
                    for event in events:
                        states[i] = states[i] + event.magnitude * dist_state[i]
                        runtimes[i].on_disturbance(tick)
            arbiter.grant_pending()
            comms: Dict[int, CommState] = {}
            ticks: Dict[int, float] = {}
            for i, k in due:
                x = states[i]
                norm = sqrt(x @ x)
                norms[i] = norm
                tick = times_f[i][k]
                ticks[i] = tick
                comms[i] = runtimes[i].update(tick, norm)
            for name in arbiter.grant_pending():
                i = idx_of[name]
                if i in comms and runtimes[i].state is waiting:
                    comms[i] = runtimes[i].update(ticks[i], norms[i])
            # 5. Slot hand-over, controls, submissions; the trace delay
            #    is patched when the interval resolves, like the event
            #    kernel's NaN placeholder.
            self._propagate_slots(slot_owner)
            for i, k in due:
                comm = comms[i]
                mode = 1 if comm is tt_holding else 0
                release = times_f[i][k]
                u = neg_dots[i][mode](concat((states[i], held[i])))
                append = appenders[i]
                append[0](release)
                append[1](norms[i])
                append[2](comm)
                append[3](float("nan"))
                mirror.submit(i, mode == 1, frame_ids[i], release)
                pending[i] = [u, release, mode, len(delay_lists[i]) - 1, None]
        sim.jitter_violations += violations
        self._clamped += clamped


__all__ = ["flexray_deterministic"]
