"""Per-application switching runtime (the Figure 1 state machine).

Each application cycles through three communication states:

* ``ET_STEADY`` — ``||x|| <= Eth``; control messages use the dynamic
  segment and no TT slot is requested;
* ``WAITING`` — a disturbance pushed ``||x||`` above ``Eth``; the
  application keeps using ET communication while requesting its TT slot;
* ``TT_HOLDING`` — the slot was granted; the control loop closes over
  the static slot until ``||x||`` falls back to ``Eth``, then the slot
  is released and the application returns to ``ET_STEADY``.

The runtime also records per-disturbance response times so the
co-simulation can check deadlines (Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.arbiter import SlotClient, TTSlotArbiter
from repro.utils.validation import check_positive


class CommState(enum.Enum):
    """Communication state of one application."""

    ET_STEADY = "et-steady"
    WAITING = "waiting"
    TT_HOLDING = "tt-holding"


@dataclass
class DisturbanceRecord:
    """Book-keeping for one disturbance rejection episode."""

    arrival: float
    granted_at: Optional[float] = None
    settled_at: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        if self.settled_at is None:
            return None
        return self.settled_at - self.arrival

    @property
    def wait_time(self) -> Optional[float]:
        """Time spent in ET mode before the slot grant (None = never granted)."""
        if self.granted_at is None:
            return None
        return self.granted_at - self.arrival


@dataclass
class SwitchingRuntime:
    """Threshold-switching logic for one application.

    Parameters
    ----------
    name:
        Application name (must match the arbiter registration).
    threshold:
        Steady-state threshold ``Eth``.
    arbiter:
        The shared TT-slot arbiter.
    deadline:
        Response-time requirement (drives arbitration priority and the
        deadline check).
    """

    name: str
    threshold: float
    arbiter: TTSlotArbiter
    deadline: float
    state: CommState = CommState.ET_STEADY
    records: List[DisturbanceRecord] = field(default_factory=list)
    tt_allowed: bool = True

    def __post_init__(self):
        check_positive(self.threshold, "threshold")
        check_positive(self.deadline, "deadline")

    @property
    def current_record(self) -> Optional[DisturbanceRecord]:
        if self.records and self.records[-1].settled_at is None:
            return self.records[-1]
        return None

    def on_disturbance(self, time: float) -> None:
        """Note a disturbance arrival (the plant state jump happens
        outside; this only starts the response-time clock)."""
        if self.current_record is None:
            self.records.append(DisturbanceRecord(arrival=time))
        # A disturbance during an ongoing episode keeps the original
        # clock; the paper's model (xi_d <= r) makes this a corner case.

    def update(self, time: float, norm: float) -> CommState:
        """Advance the state machine at a sampling instant.

        Called once per sample with the current plant-state norm, *after*
        the arbiter has granted pending requests for this instant.
        Returns the communication state to use for this sample's message.
        """
        above = norm > self.threshold
        if not self.tt_allowed:
            # Pure-ET baseline: track episodes but never touch the arbiter.
            if above and self.current_record is None:
                self.records.append(DisturbanceRecord(arrival=time))
            elif not above and self.current_record is not None:
                self._mark_settled(time)
            return CommState.ET_STEADY
        if self.state is CommState.ET_STEADY:
            if above:
                if self.current_record is None:
                    # Disturbance observed via the norm (e.g. ramp-in).
                    self.records.append(DisturbanceRecord(arrival=time))
                if self.arbiter.request(self.name):
                    self._mark_granted(time)
                    self.state = CommState.TT_HOLDING
                else:
                    self.state = CommState.WAITING
        elif self.state is CommState.WAITING:
            if not above:
                # Settled while waiting: withdraw and go back to steady.
                self.arbiter.withdraw(self.name)
                self._mark_settled(time)
                self.state = CommState.ET_STEADY
            elif self.arbiter.holds(self.name) or self.arbiter.request(self.name):
                self._mark_granted(time)
                self.state = CommState.TT_HOLDING
        elif self.state is CommState.TT_HOLDING:
            if not above:
                self.arbiter.release(self.name)
                self._mark_settled(time)
                self.state = CommState.ET_STEADY
        return self.state

    def uses_tt(self) -> bool:
        return self.state is CommState.TT_HOLDING

    def response_times(self) -> List[float]:
        """Response times of all completed disturbance episodes."""
        return [r.response_time for r in self.records if r.response_time is not None]

    def wait_times(self) -> List[float]:
        """ET-mode wait before the slot grant, per granted episode."""
        return [r.wait_time for r in self.records if r.wait_time is not None]

    def deadline_misses(self) -> int:
        return sum(1 for r in self.response_times() if r > self.deadline + 1e-9)

    def client(self) -> SlotClient:
        return SlotClient(name=self.name, deadline=self.deadline)

    def _mark_granted(self, time: float) -> None:
        record = self.current_record
        if record is not None and record.granted_at is None:
            record.granted_at = time

    def _mark_settled(self, time: float) -> None:
        record = self.current_record
        if record is not None:
            record.settled_at = time


__all__ = ["CommState", "DisturbanceRecord", "SwitchingRuntime"]
