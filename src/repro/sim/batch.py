"""Batched analytic-network fast path for the co-simulator.

When every application in a fleet rides an
:class:`~repro.sim.cosim.AnalyticNetwork`, sensor-to-actuator delays are
state-independent constants per communication mode — nothing on the bus
depends on contention.  The event kernel still pays full freight for
that fleet: queue pushes and pops per tick, network submit/advance
round-trips, :class:`~repro.sim.cosim.Submission` objects, and delay
equalization recomputed per sample.  This module removes all of it:

* per-application **sampling-tick grids** are precomputed up front (the
  multi-rate barrier structure is derived once by bucketing tick times
  on the same integer-nanosecond timestamps the event kernel coalesces
  on — no event queue at run time);
* per-mode **delays, jitter-violation flags and cache keys** are
  resolved to constants before the loop (the analytic network's delay,
  clamped to the period, run through the jitter-equalization rule once
  instead of once per sample);
* same-dynamics plants advance in **NumPy-batched sweeps**, stacking
  states exactly the way
  :meth:`~repro.sim.stepper.PlantStepperBank.step_all` does so the
  arithmetic stays bitwise identical, with the group/bucket plan and
  the ``Phi``/``Gamma`` transposes hoisted out of the loop.

The fast path reproduces the event kernel **bitwise**: same operation
sequence per barrier (disturbances, arbitration, state-machine updates,
controls, plant sweeps), same float products for every recorded time,
norm and delay.  The test suite asserts trace equality against both the
event and the legacy kernel.

Eligibility is deliberately narrow: :func:`batch_eligible` accepts only
fleets whose network is *exactly* an :class:`AnalyticNetwork` (a
subclass could override the delay model, so it falls back).  Everything
else — FlexRay buses, background traffic, frame loss — runs on the
event kernel; :class:`~repro.sim.cosim.CoSimulator` handles the
fallback transparently for ``kernel="batch"`` and ``kernel="auto"``.
"""

from __future__ import annotations

from math import sqrt
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

# Importing cosim here is safe: cosim never imports this module at load
# time (only lazily inside CoSimulator.run), so there is no cycle.
# Sharing _TIME_TOL matters — the disturbance-to-tick mapping must use
# the exact same ceil() product as the event kernel.
from repro.sim.cosim import _TIME_TOL, AnalyticNetwork
from repro.sim.runtime import CommState
from repro.sim.stepper import GLOBAL_ZOH_CACHE, _dynamics_key, delay_key
from repro.sim.trace import AppTrace, SimulationTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cosim import CoSimulator


def batch_eligible(sim: "CoSimulator") -> bool:
    """Whether the batch fast path can run this co-simulation.

    True iff the network is exactly an
    :class:`~repro.sim.cosim.AnalyticNetwork` — then every delay is a
    per-mode constant and the network needs no cycle-accurate stepping.
    Subclasses are rejected (they may override the delay model), as is
    anything cycle-accurate; those fleets run on the event kernel.
    """
    return type(sim.network) is AnalyticNetwork


class _BatchKernel:
    """Vectorized co-simulation over precomputed tick grids.

    Mirrors the event kernel's two delay-resolution modes:

    * **eager** (shared period): each barrier computes controls, delays
      and plant sweeps for the whole roster at once — the legacy
      kernel's operation sequence with the per-sample network and
      bookkeeping costs hoisted out of the loop;
    * **lazy** (multi-rate): each application's interval is stepped at
      its *next* tick, exactly when the event kernel resolves it, so
      the plant-sweep stacking — and therefore the floating-point
      result — matches barrier for barrier.
    """

    def __init__(self, sim: "CoSimulator", horizon: float):
        self.sim = sim
        self.apps = sim.applications
        self.horizon = horizon
        self.n = len(self.apps)
        self.periods = [sim.period_of(a) for a in self.apps]
        self.eager = len({round(p, 12) for p in self.periods}) == 1
        self.steps = [int(np.ceil(horizon / p)) for p in self.periods]
        self.traces = SimulationTrace(horizon=horizon)

    # -- setup ------------------------------------------------------------

    def _prepare(self) -> None:
        sim = self.sim
        network = sim.network
        cache = GLOBAL_ZOH_CACHE
        n = self.n
        self.names = [a.name for a in self.apps]
        self.runtimes = [sim.runtimes[name] for name in self.names]
        self.states: List[np.ndarray] = []
        self.held: List[np.ndarray] = []
        self.dist_state: List[np.ndarray] = []
        self.appenders: List[Tuple] = []
        #: per app: ``(-gain_et, -gain_tt)`` — negation distributes
        #: exactly over the matmul, so ``(-K) @ z == -(K @ z)`` bitwise.
        self.neg_gains: List[Tuple[np.ndarray, np.ndarray]] = []
        self.designs: List[Tuple[float, float]] = []  # (et, tt) mode delays
        group_ids: Dict[Tuple, int] = {}
        self.group_of: List[int] = []
        self.discs: List = []  # per group, the cached discretisation
        for i, app in enumerate(self.apps):
            name = app.name
            period = self.periods[i]
            disc = cache.plant(app.dynamics, period)
            key = (_dynamics_key(app.dynamics), round(period, 12))
            gid = group_ids.setdefault(key, len(group_ids))
            if gid == len(self.discs):
                self.discs.append(disc)
            self.group_of.append(gid)
            self.states.append(np.zeros(app.dynamics.n_states))
            self.held.append(np.zeros(app.app.et.plant.n_inputs))
            self.dist_state.append(app.disturbance_state)
            trace = AppTrace(
                name=name, threshold=app.app.threshold, deadline=app.deadline
            )
            self.traces.add(trace)
            self.appenders.append(
                (
                    trace.times.append,
                    trace.norms.append,
                    trace.states.append,
                    trace.delays.append,
                )
            )
            self.neg_gains.append((-app.app.et.gain, -app.app.tt.gain))
            self.designs.append((app.app.et.plant.delay, app.app.tt.plant.delay))
        # Disturbance arrivals on the owning application's tick grid —
        # the event kernel's exact ceil() product decides the tick.
        self.dist_at: List[Dict[int, List]] = [dict() for _ in range(n)]
        for i, app in enumerate(self.apps):
            p = self.periods[i]
            for event in app.disturbances.events_until(self.horizon):
                k = max(0, int(np.ceil((event.time - _TIME_TOL) / p)))
                if k >= self.steps[i]:
                    continue
                self.dist_at[i].setdefault(k, []).append(event)
        # Analytic delays per (application, mode), resolved once.  The
        # eager kernel sees ``min(c, period)``; the lazy kernel sees
        # ``min((release + c) - release, period)`` which is release-
        # dependent in floats, so lazy mode recomputes it per tick.
        self.mode_c = (float(network.et_delay), float(network.tt_delay))
        if self.eager:
            period = self.periods[0]
            self.eager_info: List[Tuple[Tuple, Tuple]] = []
            for i in range(n):
                self.eager_info.append(
                    tuple(
                        self._eager_mode_info(i, self.mode_c[mode], period, mode)
                        for mode in (0, 1)
                    )
                )

    def _eager_mode_info(self, i: int, c: float, period: float, mode: int):
        """``(delay, violations, bucket_token, mats)`` for one mode."""
        delay = min(c, period)
        viol = 0
        if self.sim.equalize_delays:
            design = self.designs[i][mode]
            if delay <= design + 1e-12:
                delay = design
            else:
                viol = 1
        gid = self.group_of[i]
        token = (gid, delay_key(delay))
        return (delay, viol, token, self._token_mats(gid, delay))

    def _token_mats(self, gid: int, delay: float):
        """Hoisted operators for one ``(group, delay-bucket)``: bound
        ``.dot`` methods of the same arrays (and ``.T`` views)
        ``step_all`` would fetch per call.  ``ndarray.dot`` and ``@``
        dispatch to the same BLAS routines for these shapes (the parity
        tests pin the bitwise identity); the bound method skips the
        operator protocol on every hot-loop call."""
        disc = self.discs[gid]
        gamma0, gamma1 = disc.gammas(delay)
        phi = disc.phi
        return (phi.dot, gamma0.dot, gamma1.dot, phi.T, gamma0.T, gamma1.T)

    # -- plant sweeps ------------------------------------------------------

    def _sweep(self, buckets, token_mats, states, us, u_prevs) -> None:
        """Advance bucketed plants — ``PlantStepperBank.step_all``'s
        arithmetic (scalar matvecs for singletons, stacked ``x @ Phi.T``
        sweeps otherwise; in-place accumulation adds the same values
        without the intermediate temporaries), with the plan hoisted."""
        for token, idxs in buckets.items():
            phi_dot, g0_dot, g1_dot, phi_t, g0t, g1t = token_mats[token]
            if len(idxs) == 1:
                i = idxs[0]
                advanced = phi_dot(states[i])
                advanced += g0_dot(us[i])
                advanced += g1_dot(u_prevs[i])
                states[i] = advanced
            else:
                x = np.stack([states[i] for i in idxs])
                u = np.stack([us[i] for i in idxs])
                u_prev = np.stack([u_prevs[i] for i in idxs])
                advanced = x.dot(phi_t)
                advanced += u.dot(g0t)
                advanced += u_prev.dot(g1t)
                for row, i in enumerate(idxs):
                    states[i] = advanced[row]

    # -- run ---------------------------------------------------------------

    def run(self) -> SimulationTrace:
        self._prepare()
        if self.eager:
            self._run_eager()
        else:
            self._run_lazy()
        return self.traces

    def _run_eager(self) -> None:
        """Shared-period sweep: the legacy/event operation sequence with
        constants hoisted; one pass per sampling instant.

        Hot-loop structure (the fig5 analytic roster spends ~40 us per
        sampling instant here, vs ~120 us in the legacy loop):

        * state-machine updates take a fast path while an application
          sits below threshold in ``ET_STEADY`` — ``update()`` is a
          no-op there by inspection, so the call is skipped;
        * the plant-sweep bucket plan depends only on the tuple of
          communication modes, which rarely changes between consecutive
          instants, so plans are memoized per mode tuple;
        * every matrix product goes through a pre-bound ``.dot``.
        """
        sim = self.sim
        arbiter = sim.arbiter
        n = self.n
        app_range = range(n)
        period = self.periods[0]
        steps = self.steps[0]
        states = self.states
        held = self.held
        runtimes = self.runtimes
        appenders = self.appenders
        neg_dots = [(et.dot, tt.dot) for et, tt in self.neg_gains]
        et_info = [info[0] for info in self.eager_info]
        tt_info = [info[1] for info in self.eager_info]
        thresholds = [rt.threshold for rt in runtimes]
        fastable = [rt.tt_allowed for rt in runtimes]
        dist_state = self.dist_state
        names = self.names
        idx_of = {name: i for i, name in enumerate(names)}
        et_steady = CommState.ET_STEADY
        tt_holding = CommState.TT_HOLDING
        waiting = CommState.WAITING
        concat = np.concatenate
        # Disturbances flattened per step, application-major.
        dist_steps: Dict[int, List[Tuple[int, object]]] = {}
        for i, by_k in enumerate(self.dist_at):
            for k, events in by_k.items():
                dist_steps.setdefault(k, []).extend((i, e) for e in events)
        norms = [0.0] * n
        comms: List[CommState] = [et_steady] * n
        modes = [0] * n
        us: List[Optional[np.ndarray]] = [None] * n
        plan_cache: Dict[Tuple[int, ...], List] = {}
        violations = 0
        for k in range(steps):
            t = k * period
            events = dist_steps.get(k)
            if events is not None:
                for i, event in events:
                    states[i] = states[i] + event.magnitude * dist_state[i]
                    runtimes[i].on_disturbance(t)
            arbiter.grant_pending()
            for i in app_range:
                x = states[i]
                norm = sqrt(x.dot(x))
                norms[i] = norm
                rt = runtimes[i]
                if fastable[i] and rt.state is et_steady and norm <= thresholds[i]:
                    # update() is a no-op below threshold in ET_STEADY.
                    comms[i] = et_steady
                else:
                    comms[i] = rt.update(t, norm)
            for name in arbiter.grant_pending():
                i = idx_of[name]
                if runtimes[i].state is waiting:
                    comms[i] = runtimes[i].update(t, norms[i])
            for i in app_range:
                comm = comms[i]
                if comm is tt_holding:
                    mode = 1
                    delay, viol, _, _ = tt_info[i]
                else:
                    mode = 0
                    delay, viol, _, _ = et_info[i]
                modes[i] = mode
                violations += viol
                us[i] = neg_dots[i][mode](concat((states[i], held[i])))
                append = appenders[i]
                append[0](t)
                append[1](norms[i])
                append[2](comm)
                append[3](delay)
            plan_key = tuple(modes)
            plan = plan_cache.get(plan_key)
            if plan is None:
                plan = self._eager_plan(modes)
                plan_cache[plan_key] = plan
            for phi_dot, g0_dot, g1_dot, phi_t, g0t, g1t, idxs, solo in plan:
                if solo is not None:
                    advanced = phi_dot(states[solo])
                    advanced += g0_dot(us[solo])
                    advanced += g1_dot(held[solo])
                    states[solo] = advanced
                else:
                    x = np.stack([states[j] for j in idxs])
                    u = np.stack([us[j] for j in idxs])
                    u_prev = np.stack([held[j] for j in idxs])
                    advanced = x.dot(phi_t)
                    advanced += u.dot(g0t)
                    advanced += u_prev.dot(g1t)
                    for row, j in enumerate(idxs):
                        states[j] = advanced[row]
            for i in app_range:
                held[i] = us[i]
        sim.jitter_violations += violations
        final_time = steps * period
        for i in app_range:
            x = states[i]
            append = appenders[i]
            append[0](final_time)
            append[1](sqrt(x.dot(x)))
            append[2](runtimes[i].state)
            append[3](0.0)
            self.traces[names[i]].response_times = runtimes[i].response_times()

    def _eager_plan(self, modes: List[int]) -> List[Tuple]:
        """Sweep plan for one mode assignment: buckets in first-seen
        (roster) order, each carrying its hoisted operators and either a
        singleton index or the stacked index list."""
        buckets: Dict[Tuple, List[int]] = {}
        mats_of: Dict[Tuple, Tuple] = {}
        for i in range(self.n):
            _, _, token, mats = self.eager_info[i][modes[i]]
            bucket = buckets.get(token)
            if bucket is None:
                buckets[token] = [i]
                mats_of[token] = mats
            else:
                bucket.append(i)
        plan = []
        for token, idxs in buckets.items():
            mats = mats_of[token]
            solo = idxs[0] if len(idxs) == 1 else None
            plan.append((*mats, idxs, solo))
        return plan

    def _run_lazy(self) -> None:
        """Multi-rate sweep: barriers bucketed on the event kernel's
        integer-nanosecond timestamps; each interval steps at the owning
        application's next tick, exactly when the event kernel does."""
        sim = self.sim
        arbiter = sim.arbiter
        equalize = sim.equalize_delays
        states = self.states
        held = self.held
        runtimes = self.runtimes
        appenders = self.appenders
        neg_dots = [(et.dot, tt.dot) for et, tt in self.neg_gains]
        designs = self.designs
        dist_at = self.dist_at
        names = self.names
        mode_c = self.mode_c
        idx_of = {name: i for i, name in enumerate(names)}
        tt_holding = CommState.TT_HOLDING
        waiting = CommState.WAITING
        concat = np.concatenate
        # Per-application tick grids (floats are the same k * period
        # products the event kernel schedules) and their barrier keys.
        times_f: List[List[float]] = []
        barriers: Dict[int, Tuple[List[Tuple[int, int]], List[int]]] = {}
        for i in range(self.n):
            grid = np.arange(self.steps[i] + 1, dtype=np.float64) * self.periods[i]
            ns = np.rint(grid * 1e9).astype(np.int64)
            times_f.append(grid.tolist())
            keys = ns.tolist()
            for k in range(self.steps[i]):
                barriers.setdefault(keys[k], ([], []))[0].append((i, k))
            barriers.setdefault(keys[self.steps[i]], ([], []))[1].append(i)
        #: per app: ``(u, delay, bucket_token, mats)`` awaiting its step.
        pending: List[Optional[Tuple]] = [None] * self.n
        lazy_tokens: Dict[Tuple, Tuple] = {}
        norms: Dict[int, float] = {}
        violations = 0
        for key in sorted(barriers):
            due, finals = barriers[key]
            # 1. Step every interval that ends at this barrier (the
            #    event kernel's _resolve: due first, then finals).
            buckets: Dict[Tuple, List[int]] = {}
            token_mats: Dict[Tuple, Tuple] = {}
            resolved: List[Tuple[int, np.ndarray]] = []
            us: Dict[int, np.ndarray] = {}
            for i in [*(i for i, _ in due), *finals]:
                record = pending[i]
                if record is None:
                    continue  # the very first tick has no interval behind it
                pending[i] = None
                u, _, token, mats = record
                us[i] = u
                resolved.append((i, u))
                bucket = buckets.get(token)
                if bucket is None:
                    buckets[token] = [i]
                    token_mats[token] = mats
                else:
                    bucket.append(i)
            if resolved:
                self._sweep(buckets, token_mats, states, us, held)
                for i, u in resolved:
                    held[i] = u
            # 2. Horizon samples for applications finishing here.
            for i in finals:
                x = states[i]
                append = appenders[i]
                append[0](self.steps[i] * self.periods[i])
                append[1](sqrt(x @ x))
                append[2](runtimes[i].state)
                append[3](0.0)
                self.traces[names[i]].response_times = runtimes[i].response_times()
            if not due:
                continue
            # 3. Disturbances, arbitration and state machines.
            for i, k in due:
                events = dist_at[i].get(k)
                if events:
                    tick = times_f[i][k]
                    for event in events:
                        states[i] = states[i] + event.magnitude * self.dist_state[i]
                        runtimes[i].on_disturbance(tick)
            arbiter.grant_pending()
            comms: Dict[int, CommState] = {}
            ticks: Dict[int, float] = {}
            for i, k in due:
                x = states[i]
                norm = sqrt(x @ x)
                norms[i] = norm
                tick = times_f[i][k]
                ticks[i] = tick
                comms[i] = runtimes[i].update(tick, norm)
            for name in arbiter.grant_pending():
                i = idx_of[name]
                if i in comms and runtimes[i].state is waiting:
                    comms[i] = runtimes[i].update(ticks[i], norms[i])
            # 4. Controls, delays (resolved now — the event kernel's
            #    min((release + c) - release, period) product), traces.
            for i, k in due:
                comm = comms[i]
                mode = 1 if comm is tt_holding else 0
                release = times_f[i][k]
                delay = min((release + mode_c[mode]) - release, self.periods[i])
                if equalize:
                    design = designs[i][mode]
                    if delay <= design + 1e-12:
                        delay = design
                    else:
                        violations += 1
                u = neg_dots[i][mode](concat((states[i], held[i])))
                append = appenders[i]
                append[0](release)
                append[1](norms[i])
                append[2](comm)
                append[3](delay)
                gid = self.group_of[i]
                token = (gid, delay_key(delay))
                mats = lazy_tokens.get(token)
                if mats is None:
                    mats = self._token_mats(gid, delay)
                    lazy_tokens[token] = mats
                pending[i] = (u, delay, token, mats)
        sim.jitter_violations += violations


__all__ = ["batch_eligible"]
