"""Batched analytic-network fast path for the co-simulator.

When every application in a fleet rides an
:class:`~repro.sim.network.AnalyticNetwork`, sensor-to-actuator delays
are state-independent constants per communication mode — nothing on the
bus
depends on contention.  The event kernel still pays full freight for
that fleet: queue pushes and pops per tick, network submit/advance
round-trips, :class:`~repro.sim.network.Submission` objects, and delay
equalization recomputed per sample.  This module removes all of it:

* per-application **sampling-tick grids** are precomputed up front (the
  multi-rate barrier structure is derived once by bucketing tick times
  on the same integer-nanosecond timestamps the event kernel coalesces
  on — no event queue at run time);
* per-mode **delays, jitter-violation flags and cache keys** are
  resolved to constants before the loop (the analytic network's delay,
  clamped to the period, run through the jitter-equalization rule once
  instead of once per sample);
* same-dynamics plants advance in **NumPy-batched sweeps**, stacking
  states exactly the way
  :meth:`~repro.sim.stepper.PlantStepperBank.step_all` does so the
  arithmetic stays bitwise identical, with the group/bucket plan and
  the ``Phi``/``Gamma`` transposes hoisted out of the loop.

The fast path reproduces the event kernel **bitwise**: same operation
sequence per barrier (disturbances, arbitration, state-machine updates,
controls, plant sweeps), same float products for every recorded time,
norm and delay.  The test suite asserts trace equality against both the
event and the legacy kernel.

Eligibility is a **capability check**: :func:`batch_capability` asks
the network's own ``capabilities()`` descriptor (the frozen
:mod:`repro.sim.network` protocol) which precomputation strategy it
opts into —

* ``"analytic"`` — delays are per-mode constants (claimed by stock
  :class:`~repro.sim.network.AnalyticNetwork` instances; subclasses
  could override the delay model, so they never inherit the claim);
* ``"flexray"`` — a deterministic FlexRay schedule: ``loss_rate == 0``,
  no background dynamic-segment traffic, stock bus/segment classes and
  a cold bus (see :func:`repro.sim.batch_flexray.flexray_deterministic`).
  The static segment is TDMA, so every grant and transmission instant
  follows from the slot table and is replayed ahead of the event loop
  by :class:`~repro.sim.batch_flexray._FlexRaySchedule`;
* ``None`` — anything else (frame loss, dynamic-segment contention,
  subclasses that do not re-claim a strategy, capability-less
  duck-types) runs on the event kernel;
  :class:`~repro.sim.cosim.CoSimulator` handles the fallback
  transparently for ``kernel="batch"`` and ``kernel="auto"`` and
  records the choice in the cosim artifact's ``kernel_used``.

On top of the precomputed grids, per-sample **norms** and **control
products** vectorize across applications: fleet-wide row-stacked
``sqrt(einsum)`` norms per state dimension and one matmul per
(gain, mode) group across same-gain applications.  Both are gated by
seeded probes (:func:`_norm_stack_safe`, :func:`_rowwise_control_safe`)
that engage the stacked formulation only where this platform reproduces
the scalar arithmetic bitwise, and singleton plant buckets additionally
merge across *different* dynamics through the
:func:`~repro.sim.stepper.stacked_safe` 3-D-matmul probe shared with
:class:`~repro.sim.stepper.PlantStepperBank`.
"""

from __future__ import annotations

from math import sqrt
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

# Importing cosim here is safe: cosim never imports this module at load
# time (only lazily inside CoSimulator.run), so there is no cycle.
# Sharing _TIME_TOL matters — the disturbance-to-tick mapping must use
# the exact same ceil() product as the event kernel.
from repro.sim.cosim import _TIME_TOL
from repro.sim.network.protocol import BATCH_STRATEGIES
from repro.sim.runtime import CommState
from repro.sim.stepper import (
    GLOBAL_ZOH_CACHE,
    _dynamics_key,
    delay_key,
    stacked_safe,
)
from repro.sim.trace import AppTrace, SimulationTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cosim import CoSimulator


def batch_capability(sim: "CoSimulator") -> Optional[str]:
    """Which batch precomputation strategy covers this co-simulation.

    The network *describes itself*: its ``capabilities()`` descriptor
    (see :class:`repro.sim.network.NetworkCapabilities`) names the
    strategy it opts into, so third-party backends can claim a fast
    path without this module knowing their classes.

    * ``"analytic"`` — delays are per-mode constants
      (``tt_delay``/``et_delay``); the network needs no cycle-accurate
      stepping.  Claimed by stock
      :class:`~repro.sim.network.AnalyticNetwork` instances.
    * ``"flexray"`` — a deterministic FlexRay schedule (``loss_rate ==
      0``, no background dynamic-segment traffic, stock bus/segment
      classes, cold bus): every grant and transmission instant follows
      from the slot table and can be replayed ahead of the loop.
      Claimed by qualifying stock
      :class:`~repro.sim.network.FlexRayNetwork` instances.
    * ``None`` — not batchable; the fleet runs on the event kernel.

    The bundled backends never claim a strategy from a subclass (an
    override could change the delay or transport model the strategy
    replays), so subclasses fall back to event cleanly — unless they
    deliberately override ``capabilities()`` to opt back in.  Networks
    without a ``capabilities()`` descriptor (pre-protocol duck-types)
    are never batched.
    """
    describe = getattr(sim.network, "capabilities", None)
    if describe is None:
        return None
    strategy = describe().batch_strategy
    if strategy in BATCH_STRATEGIES:
        return strategy
    return None


def batch_eligible(sim: "CoSimulator") -> bool:
    """Whether the batch fast path can run this co-simulation.

    True iff :func:`batch_capability` names a strategy the kernel
    implements.  Anything else — frame loss, background
    dynamic-segment traffic, subclasses that do not re-claim a
    strategy, capability-less duck-types — runs on the event kernel.
    """
    return batch_capability(sim) is not None


_NORM_PROBE: Dict[int, bool] = {}


def _norm_stack_safe(n_states: int) -> bool:
    """Whether row-stacked ``sqrt(einsum('ij,ij->i', X, X))`` matches the
    per-vector ``sqrt(x.dot(x))`` norms bitwise on this platform.

    A seeded random probe decides this once per state dimension per
    process.  The probe is deliberately large (2048 samples across 12
    decades of magnitude): where the two routes differ — e.g. a
    fused-multiply-add ``ddot`` against an unfused einsum reduction —
    mismatches are value-dependent but frequent (several percent of
    random inputs), so a large sample rejects such a platform with
    overwhelming probability and the scalar formulation stays in force.
    """
    cached = _NORM_PROBE.get(n_states)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0x5AFE + n_states)
    count = 2048
    xs = rng.standard_normal((count, n_states))
    xs *= np.logspace(-6, 6, count)[:, None]
    stacked = np.sqrt(np.einsum("ij,ij->i", xs, xs))
    safe = all(sqrt(xs[i].dot(xs[i])) == stacked[i] for i in range(count))
    _NORM_PROBE[n_states] = safe
    return safe


def _rowwise_control_safe(neg_gain: np.ndarray) -> bool:
    """Whether ``Z @ (-K).T`` rows match the per-sample ``(-K) @ z``
    products bitwise for this exact gain matrix.

    Probed with many seeded random samples over several stack heights:
    the matrix-vector and matrix-matrix BLAS routes may fuse their
    multiply-adds differently, and such divergence is value-dependent
    but frequent under random inputs, so hundreds of trials per height
    reject an unsafe platform with overwhelming probability.
    """
    rng = np.random.default_rng(0x5AFE)
    neg_t = neg_gain.T
    width = neg_gain.shape[1]
    for m in (2, 3, 4, 5, 8, 16):
        for _ in range(32):
            zs = rng.standard_normal((m, width))
            stacked = zs.dot(neg_t)
            if not all(
                np.array_equal(neg_gain.dot(zs[i]), stacked[i])
                for i in range(m)
            ):
                return False
    return True


class _BatchKernel:
    """Vectorized co-simulation over precomputed tick grids.

    Mirrors the event kernel's two delay-resolution modes:

    * **eager** (shared period): each barrier computes controls, delays
      and plant sweeps for the whole roster at once — the legacy
      kernel's operation sequence with the per-sample network and
      bookkeeping costs hoisted out of the loop;
    * **lazy** (multi-rate): each application's interval is stepped at
      its *next* tick, exactly when the event kernel resolves it, so
      the plant-sweep stacking — and therefore the floating-point
      result — matches barrier for barrier.
    """

    def __init__(self, sim: "CoSimulator", horizon: float):
        self.sim = sim
        self.apps = sim.applications
        self.horizon = horizon
        self.n = len(self.apps)
        self.periods = [sim.period_of(a) for a in self.apps]
        self.eager = len({round(p, 12) for p in self.periods}) == 1
        self.steps = [int(np.ceil(horizon / p)) for p in self.periods]
        self.traces = SimulationTrace(horizon=horizon)

    # -- setup ------------------------------------------------------------

    def _prepare(self) -> None:
        sim = self.sim
        cache = GLOBAL_ZOH_CACHE
        n = self.n
        self.names = [a.name for a in self.apps]
        self.runtimes = [sim.runtimes[name] for name in self.names]
        self.states: List[np.ndarray] = []
        self.held: List[np.ndarray] = []
        self.dist_state: List[np.ndarray] = []
        self.appenders: List[Tuple] = []
        #: per app: ``(-gain_et, -gain_tt)`` — negation distributes
        #: exactly over the matmul, so ``(-K) @ z == -(K @ z)`` bitwise.
        self.neg_gains: List[Tuple[np.ndarray, np.ndarray]] = []
        self.designs: List[Tuple[float, float]] = []  # (et, tt) mode delays
        group_ids: Dict[Tuple, int] = {}
        self.group_of: List[int] = []
        self.discs: List = []  # per group, the cached discretisation
        for i, app in enumerate(self.apps):
            name = app.name
            period = self.periods[i]
            disc = cache.plant(app.dynamics, period)
            key = (_dynamics_key(app.dynamics), round(period, 12))
            gid = group_ids.setdefault(key, len(group_ids))
            if gid == len(self.discs):
                self.discs.append(disc)
            self.group_of.append(gid)
            self.states.append(np.zeros(app.dynamics.n_states))
            self.held.append(np.zeros(app.app.et.plant.n_inputs))
            self.dist_state.append(app.disturbance_state)
            trace = AppTrace(
                name=name, threshold=app.app.threshold, deadline=app.deadline
            )
            self.traces.add(trace)
            self.appenders.append(
                (
                    trace.times.append,
                    trace.norms.append,
                    trace.states.append,
                    trace.delays.append,
                )
            )
            self.neg_gains.append((-app.app.et.gain, -app.app.tt.gain))
            self.designs.append((app.app.et.plant.delay, app.app.tt.plant.delay))
        # Disturbance arrivals on the owning application's tick grid —
        # the event kernel's exact ceil() product decides the tick.
        self.dist_at: List[Dict[int, List]] = [dict() for _ in range(n)]
        for i, app in enumerate(self.apps):
            p = self.periods[i]
            for event in app.disturbances.events_until(self.horizon):
                k = max(0, int(np.ceil((event.time - _TIME_TOL) / p)))
                if k >= self.steps[i]:
                    continue
                self.dist_at[i].setdefault(k, []).append(event)
        # Probe-gated vectorization groups, engaged by the eager loops:
        # fleet-wide norms per state dimension and fleet-wide control
        # products per identical gain pair.  Applications whose group
        # fails its platform probe (or that have no partner) keep the
        # scalar formulations.
        by_dim: Dict[int, List[int]] = {}
        for i, app in enumerate(self.apps):
            by_dim.setdefault(app.dynamics.n_states, []).append(i)
        self.norm_groups: List[List[int]] = []
        grouped: set = set()
        for dim, idxs in by_dim.items():
            if len(idxs) >= 2 and _norm_stack_safe(dim):
                self.norm_groups.append(idxs)
                grouped.update(idxs)
        self.norm_solo = [i for i in range(n) if i not in grouped]
        by_gain: Dict[Tuple, List[int]] = {}
        for i, (net, ntt) in enumerate(self.neg_gains):
            key = (net.shape, net.tobytes(), ntt.shape, ntt.tobytes())
            by_gain.setdefault(key, []).append(i)
        #: ``(indices, (-K_et, -K_tt), ((-K_et).T, (-K_tt).T))`` per group.
        self.gain_groups: List[Tuple[List[int], Tuple, Tuple]] = []
        self.scalar_control = [True] * n
        for idxs in by_gain.values():
            if len(idxs) < 2:
                continue
            net, ntt = self.neg_gains[idxs[0]]
            if _rowwise_control_safe(net) and _rowwise_control_safe(ntt):
                self.gain_groups.append(((net, ntt), (net.T, ntt.T), idxs))
                for i in idxs:
                    self.scalar_control[i] = False
        self._prepare_network()

    def _prepare_network(self) -> None:
        """Resolve the network's timing ahead of the loop (analytic
        base case; the deterministic-FlexRay kernel overrides this to
        build its schedule mirror instead).

        Analytic delays per (application, mode) are constants.  The
        eager kernel sees ``min(c, period)``; the lazy kernel sees
        ``min((release + c) - release, period)`` which is release-
        dependent in floats, so lazy mode recomputes it per tick.
        """
        network = self.sim.network
        self.mode_c = (float(network.et_delay), float(network.tt_delay))
        if self.eager:
            period = self.periods[0]
            self.eager_info: List[Tuple[Tuple, Tuple]] = []
            for i in range(self.n):
                self.eager_info.append(
                    tuple(
                        self._eager_mode_info(i, self.mode_c[mode], period, mode)
                        for mode in (0, 1)
                    )
                )

    def _eager_mode_info(self, i: int, c: float, period: float, mode: int):
        """``(delay, violations, bucket_token, mats)`` for one mode."""
        delay = min(c, period)
        viol = 0
        if self.sim.equalize_delays:
            design = self.designs[i][mode]
            if delay <= design + 1e-12:
                delay = design
            else:
                viol = 1
        gid = self.group_of[i]
        token = (gid, delay_key(delay))
        return (delay, viol, token, self._token_mats(gid, delay))

    def _token_mats(self, gid: int, delay: float):
        """Hoisted operators for one ``(group, delay-bucket)``: bound
        ``.dot`` methods of the same arrays (and ``.T`` views)
        ``step_all`` would fetch per call.  ``ndarray.dot`` and ``@``
        dispatch to the same BLAS routines for these shapes (the parity
        tests pin the bitwise identity); the bound method skips the
        operator protocol on every hot-loop call."""
        disc = self.discs[gid]
        gamma0, gamma1 = disc.gammas(delay)
        phi = disc.phi
        return (phi.dot, gamma0.dot, gamma1.dot, phi.T, gamma0.T, gamma1.T)

    # -- fleet-wide products -----------------------------------------------

    def _compute_norms(self, norms: List[float]) -> None:
        """Current state norms for the whole roster, into ``norms``.

        Probe-certified groups go through one row-stacked
        ``sqrt(einsum)`` per state dimension; everything else keeps the
        per-vector ``sqrt(x.dot(x))`` the event kernel computes.  The
        values are bitwise identical either way.
        """
        states = self.states
        for idxs in self.norm_groups:
            x = np.stack([states[i] for i in idxs])
            vec = np.sqrt(np.einsum("ij,ij->i", x, x))
            for row, i in enumerate(idxs):
                norms[i] = float(vec[row])
        for i in self.norm_solo:
            x = states[i]
            norms[i] = sqrt(x.dot(x))

    def _apply_control_groups(self, modes: List[int], us: List) -> None:
        """Controls for the probe-certified same-gain groups, into
        ``us`` — one ``Z @ (-K).T`` matmul per (group, mode) partition.

        Row ``i`` of the stacked ``Z`` is a pure memory copy of the
        ``concatenate((state, held))`` vector the scalar path builds, so
        with the :func:`_rowwise_control_safe` probe holding the rows of
        the product are bitwise the scalar ``(-K) @ z`` results.
        """
        states = self.states
        held = self.held
        concat = np.concatenate
        for negs, negs_t, idxs in self.gain_groups:
            for mode in (0, 1):
                rows = [i for i in idxs if modes[i] == mode]
                if not rows:
                    continue
                if len(rows) == 1:
                    i = rows[0]
                    us[i] = negs[mode].dot(concat((states[i], held[i])))
                else:
                    z = concat(
                        (
                            np.stack([states[i] for i in rows]),
                            np.stack([held[i] for i in rows]),
                        ),
                        axis=1,
                    )
                    block = z.dot(negs_t[mode])
                    for row, i in enumerate(rows):
                        us[i] = block[row]

    # -- plant sweeps ------------------------------------------------------

    def _sweep(self, buckets, token_mats, states, us, u_prevs) -> None:
        """Advance bucketed plants — ``PlantStepperBank.step_all``'s
        arithmetic (scalar matvecs for singletons, stacked ``x @ Phi.T``
        sweeps otherwise; in-place accumulation adds the same values
        without the intermediate temporaries), with the plan hoisted."""
        for token, idxs in buckets.items():
            phi_dot, g0_dot, g1_dot, phi_t, g0t, g1t = token_mats[token]
            if len(idxs) == 1:
                i = idxs[0]
                advanced = phi_dot(states[i])
                advanced += g0_dot(us[i])
                advanced += g1_dot(u_prevs[i])
                states[i] = advanced
            else:
                x = np.stack([states[i] for i in idxs])
                u = np.stack([us[i] for i in idxs])
                u_prev = np.stack([u_prevs[i] for i in idxs])
                advanced = x.dot(phi_t)
                advanced += u.dot(g0t)
                advanced += u_prev.dot(g1t)
                for row, i in enumerate(idxs):
                    states[i] = advanced[row]

    # -- run ---------------------------------------------------------------

    def run(self) -> SimulationTrace:
        self._prepare()
        if self.eager:
            self._run_eager()
        else:
            self._run_lazy()
        return self.traces

    def _run_eager(self) -> None:
        """Shared-period sweep: the legacy/event operation sequence with
        constants hoisted; one pass per sampling instant.

        Hot-loop structure (the fig5 analytic roster spends ~40 us per
        sampling instant here, vs ~120 us in the legacy loop):

        * state-machine updates take a fast path while an application
          sits below threshold in ``ET_STEADY`` — ``update()`` is a
          no-op there by inspection, so the call is skipped;
        * the plant-sweep bucket plan depends only on the tuple of
          communication modes, which rarely changes between consecutive
          instants, so plans are memoized per mode tuple;
        * every matrix product goes through a pre-bound ``.dot``.
        """
        sim = self.sim
        arbiter = sim.arbiter
        n = self.n
        app_range = range(n)
        period = self.periods[0]
        steps = self.steps[0]
        states = self.states
        held = self.held
        runtimes = self.runtimes
        appenders = self.appenders
        neg_dots = [(et.dot, tt.dot) for et, tt in self.neg_gains]
        scalar_control = self.scalar_control
        gain_groups = self.gain_groups
        et_info = [info[0] for info in self.eager_info]
        tt_info = [info[1] for info in self.eager_info]
        thresholds = [rt.threshold for rt in runtimes]
        fastable = [rt.tt_allowed for rt in runtimes]
        dist_state = self.dist_state
        names = self.names
        idx_of = {name: i for i, name in enumerate(names)}
        et_steady = CommState.ET_STEADY
        tt_holding = CommState.TT_HOLDING
        waiting = CommState.WAITING
        concat = np.concatenate
        # Disturbances flattened per step, application-major.
        dist_steps: Dict[int, List[Tuple[int, object]]] = {}
        for i, by_k in enumerate(self.dist_at):
            for k, events in by_k.items():
                dist_steps.setdefault(k, []).extend((i, e) for e in events)
        norms = [0.0] * n
        comms: List[CommState] = [et_steady] * n
        modes = [0] * n
        us: List[Optional[np.ndarray]] = [None] * n
        plan_cache: Dict[Tuple[int, ...], Tuple[List, List]] = {}
        violations = 0
        for k in range(steps):
            t = k * period
            events = dist_steps.get(k)
            if events is not None:
                for i, event in events:
                    states[i] = states[i] + event.magnitude * dist_state[i]
                    runtimes[i].on_disturbance(t)
            arbiter.grant_pending()
            self._compute_norms(norms)
            for i in app_range:
                norm = norms[i]
                rt = runtimes[i]
                if fastable[i] and rt.state is et_steady and norm <= thresholds[i]:
                    # update() is a no-op below threshold in ET_STEADY.
                    comms[i] = et_steady
                else:
                    comms[i] = rt.update(t, norm)
            for name in arbiter.grant_pending():
                i = idx_of[name]
                if runtimes[i].state is waiting:
                    comms[i] = runtimes[i].update(t, norms[i])
            for i in app_range:
                comm = comms[i]
                if comm is tt_holding:
                    mode = 1
                    delay, viol, _, _ = tt_info[i]
                else:
                    mode = 0
                    delay, viol, _, _ = et_info[i]
                modes[i] = mode
                violations += viol
                if scalar_control[i]:
                    us[i] = neg_dots[i][mode](concat((states[i], held[i])))
                append = appenders[i]
                append[0](t)
                append[1](norms[i])
                append[2](comm)
                append[3](delay)
            if gain_groups:
                self._apply_control_groups(modes, us)
            plan_key = tuple(modes)
            cached = plan_cache.get(plan_key)
            if cached is None:
                cached = self._eager_plan(modes)
                plan_cache[plan_key] = cached
            plan, stacked = cached
            for phi_dot, g0_dot, g1_dot, phi_t, g0t, g1t, idxs, solo in plan:
                if solo is not None:
                    advanced = phi_dot(states[solo])
                    advanced += g0_dot(us[solo])
                    advanced += g1_dot(held[solo])
                    states[solo] = advanced
                else:
                    x = np.stack([states[j] for j in idxs])
                    u = np.stack([us[j] for j in idxs])
                    u_prev = np.stack([held[j] for j in idxs])
                    advanced = x.dot(phi_t)
                    advanced += u.dot(g0t)
                    advanced += u_prev.dot(g1t)
                    for row, j in enumerate(idxs):
                        states[j] = advanced[row]
            for phis, g0s, g1s, idxs in stacked:
                x = np.stack([states[j] for j in idxs])[:, :, None]
                u = np.stack([us[j] for j in idxs])[:, :, None]
                u_prev = np.stack([held[j] for j in idxs])[:, :, None]
                advanced = phis @ x + g0s @ u + g1s @ u_prev
                for row, j in enumerate(idxs):
                    states[j] = advanced[row, :, 0]
            for i in app_range:
                held[i] = us[i]
        sim.jitter_violations += violations
        final_time = steps * period
        for i in app_range:
            x = states[i]
            append = appenders[i]
            append[0](final_time)
            append[1](sqrt(x.dot(x)))
            append[2](runtimes[i].state)
            append[3](0.0)
            self.traces[names[i]].response_times = runtimes[i].response_times()

    def _eager_plan(self, modes: List[int]) -> Tuple[List[Tuple], List[Tuple]]:
        """``(plan, stacked)`` for one mode assignment.

        ``plan`` holds the same-dynamics buckets (each carrying its
        hoisted operators and either a singleton index or the stacked
        index list).  Buckets left as singletons are then merged across
        *different* dynamics by ``(n_states, n_inputs)`` shape into
        ``stacked`` entries ``(Phis, Gamma0s, Gamma1s, idxs)`` — one
        batched 3-D matmul each — wherever the
        :func:`~repro.sim.stepper.stacked_safe` probe certifies bitwise
        equality with the scalar products; the rest stay in ``plan`` as
        scalar singletons.  Bucket order is free: plants are mutually
        independent within one instant.
        """
        buckets: Dict[Tuple, List[int]] = {}
        mats_of: Dict[Tuple, Tuple] = {}
        for i in range(self.n):
            _, _, token, mats = self.eager_info[i][modes[i]]
            bucket = buckets.get(token)
            if bucket is None:
                buckets[token] = [i]
                mats_of[token] = mats
            else:
                bucket.append(i)
        plan = []
        singles: List[Tuple[int, Tuple]] = []
        for token, idxs in buckets.items():
            if len(idxs) == 1:
                singles.append((idxs[0], token))
            else:
                plan.append((*mats_of[token], idxs, None))
        scalar_singles = singles
        stacked: List[Tuple] = []
        if len(singles) >= 2:
            by_shape: Dict[Tuple[int, int], List[Tuple[int, Tuple]]] = {}
            for i, token in singles:
                disc = self.discs[token[0]]
                shape = (disc.phi.shape[0], disc.gamma_full.shape[1])
                by_shape.setdefault(shape, []).append((i, token))
            scalar_singles = []
            for shape, entries in by_shape.items():
                if len(entries) >= 2 and stacked_safe(*shape):
                    discs = [self.discs[token[0]] for _, token in entries]
                    pairs = [
                        disc.gammas(self.eager_info[i][modes[i]][0])
                        for disc, (i, _) in zip(discs, entries)
                    ]
                    stacked.append(
                        (
                            np.stack([disc.phi for disc in discs]),
                            np.stack([pair[0] for pair in pairs]),
                            np.stack([pair[1] for pair in pairs]),
                            [i for i, _ in entries],
                        )
                    )
                else:
                    scalar_singles.extend(entries)
        for i, token in scalar_singles:
            plan.append((*mats_of[token], [i], i))
        return plan, stacked

    def _run_lazy(self) -> None:
        """Multi-rate sweep: barriers bucketed on the event kernel's
        integer-nanosecond timestamps; each interval steps at the owning
        application's next tick, exactly when the event kernel does."""
        sim = self.sim
        arbiter = sim.arbiter
        equalize = sim.equalize_delays
        states = self.states
        held = self.held
        runtimes = self.runtimes
        appenders = self.appenders
        neg_dots = [(et.dot, tt.dot) for et, tt in self.neg_gains]
        designs = self.designs
        dist_at = self.dist_at
        names = self.names
        mode_c = self.mode_c
        idx_of = {name: i for i, name in enumerate(names)}
        tt_holding = CommState.TT_HOLDING
        waiting = CommState.WAITING
        concat = np.concatenate
        # Per-application tick grids (floats are the same k * period
        # products the event kernel schedules) and their barrier keys.
        times_f: List[List[float]] = []
        barriers: Dict[int, Tuple[List[Tuple[int, int]], List[int]]] = {}
        for i in range(self.n):
            grid = np.arange(self.steps[i] + 1, dtype=np.float64) * self.periods[i]
            ns = np.rint(grid * 1e9).astype(np.int64)
            times_f.append(grid.tolist())
            keys = ns.tolist()
            for k in range(self.steps[i]):
                barriers.setdefault(keys[k], ([], []))[0].append((i, k))
            barriers.setdefault(keys[self.steps[i]], ([], []))[1].append(i)
        #: per app: ``(u, delay, bucket_token, mats)`` awaiting its step.
        pending: List[Optional[Tuple]] = [None] * self.n
        lazy_tokens: Dict[Tuple, Tuple] = {}
        norms: Dict[int, float] = {}
        violations = 0
        for key in sorted(barriers):
            due, finals = barriers[key]
            # 1. Step every interval that ends at this barrier (the
            #    event kernel's _resolve: due first, then finals).
            buckets: Dict[Tuple, List[int]] = {}
            token_mats: Dict[Tuple, Tuple] = {}
            resolved: List[Tuple[int, np.ndarray]] = []
            us: Dict[int, np.ndarray] = {}
            for i in [*(i for i, _ in due), *finals]:
                record = pending[i]
                if record is None:
                    continue  # the very first tick has no interval behind it
                pending[i] = None
                u, _, token, mats = record
                us[i] = u
                resolved.append((i, u))
                bucket = buckets.get(token)
                if bucket is None:
                    buckets[token] = [i]
                    token_mats[token] = mats
                else:
                    bucket.append(i)
            if resolved:
                self._sweep(buckets, token_mats, states, us, held)
                for i, u in resolved:
                    held[i] = u
            # 2. Horizon samples for applications finishing here.
            for i in finals:
                x = states[i]
                append = appenders[i]
                append[0](self.steps[i] * self.periods[i])
                append[1](sqrt(x @ x))
                append[2](runtimes[i].state)
                append[3](0.0)
                self.traces[names[i]].response_times = runtimes[i].response_times()
            if not due:
                continue
            # 3. Disturbances, arbitration and state machines.
            for i, k in due:
                events = dist_at[i].get(k)
                if events:
                    tick = times_f[i][k]
                    for event in events:
                        states[i] = states[i] + event.magnitude * self.dist_state[i]
                        runtimes[i].on_disturbance(tick)
            arbiter.grant_pending()
            comms: Dict[int, CommState] = {}
            ticks: Dict[int, float] = {}
            for i, k in due:
                x = states[i]
                norm = sqrt(x @ x)
                norms[i] = norm
                tick = times_f[i][k]
                ticks[i] = tick
                comms[i] = runtimes[i].update(tick, norm)
            for name in arbiter.grant_pending():
                i = idx_of[name]
                if i in comms and runtimes[i].state is waiting:
                    comms[i] = runtimes[i].update(ticks[i], norms[i])
            # 4. Controls, delays (resolved now — the event kernel's
            #    min((release + c) - release, period) product), traces.
            for i, k in due:
                comm = comms[i]
                mode = 1 if comm is tt_holding else 0
                release = times_f[i][k]
                delay = min((release + mode_c[mode]) - release, self.periods[i])
                if equalize:
                    design = designs[i][mode]
                    if delay <= design + 1e-12:
                        delay = design
                    else:
                        violations += 1
                u = neg_dots[i][mode](concat((states[i], held[i])))
                append = appenders[i]
                append[0](release)
                append[1](norms[i])
                append[2](comm)
                append[3](delay)
                gid = self.group_of[i]
                token = (gid, delay_key(delay))
                mats = lazy_tokens.get(token)
                if mats is None:
                    mats = self._token_mats(gid, delay)
                    lazy_tokens[token] = mats
                pending[i] = (u, delay, token, mats)
        sim.jitter_violations += violations


__all__ = ["batch_capability", "batch_eligible"]
