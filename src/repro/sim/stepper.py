"""Plant stepping for the co-simulation: cached ZOH + stacked states.

Stepping a plant over one sampling interval needs the exact delayed
zero-order-hold discretisation ``(Phi, Gamma0(d), Gamma1(d))`` of its
continuous dynamics.  Computing those matrix exponentials is the
dominant per-sample cost of a co-simulation run, and every run of the
same scenario grid re-derives the *same* matrices: the delays a message
actually experiences land on a handful of values (the design offsets,
the period, the bus-cycle quantisation).  :class:`ZOHCache` therefore
memoizes discretisations process-wide, keyed by the plant's dynamics
bytes, the sampling period and the delay (on the 0.1 us grid the
original co-simulator used) — so a 32-scenario Monte-Carlo sweep pays
for each matrix exponential once, not once per run.

:class:`PlantStepperBank` layers fleet-level stepping on top: it groups
applications by identical ``(dynamics, period)`` and, whenever several
group members step with the same delay in the same sampling instant,
advances their stacked state rows with one matrix product instead of one
per application.  Plants that remain singletons after that grouping —
*different* dynamics sharing only their ``(n_states, n_inputs)`` shape —
are additionally merged into one batched ``(m, n, n) @ (m, n, 1)``
matmul per shape, gated by :func:`stacked_safe`: a seeded per-shape
probe that engages the stacked formulation only where this platform's
batched matmul is bitwise identical, slice for slice, to the scalar
products (reduction order is shape-dependent, not value-dependent, so
the probe decides once per shape per process).  Both the event-driven
and the legacy co-simulation kernels route all stepping through one
bank, which keeps their traces bitwise identical by construction.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.control.discretization import zoh_integrals
from repro.control.lti import ContinuousStateSpace


def _dynamics_key(dynamics: ContinuousStateSpace) -> Tuple:
    """Hashable fingerprint of the continuous dynamics (exact bytes)."""
    a = np.ascontiguousarray(dynamics.a, dtype=float)
    b = np.ascontiguousarray(dynamics.b, dtype=float)
    return (a.shape, a.tobytes(), b.shape, b.tobytes())


def delay_key(delay: float) -> int:
    """Quantise a delay onto the 0.1 us cache grid."""
    return int(round(delay * 1e7))


_STACKED_PROBE: Dict[Tuple[int, int], bool] = {}


def stacked_safe(n_states: int, n_inputs: int) -> bool:
    """Whether batched ``(m,n,n) @ (m,n,1)`` matmul matches the scalar
    per-plant products bitwise on this platform, for one plant shape.

    numpy may route the batched gufunc and the plain 2-D ``@`` through
    BLAS kernels whose multiply-adds fuse differently.  Such divergence
    is value-dependent but frequent under random inputs (several percent
    of samples on an affected platform), so a seeded probe with dozens
    of trials per batch height rejects an unsafe platform with
    overwhelming probability; a pass licenses the stacked formulation
    for all inputs of this ``(n_states, n_inputs)`` shape, decided once
    per shape per process.
    """
    key = (n_states, n_inputs)
    cached = _STACKED_PROBE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0x5AFE)
    safe = True
    for m in (2, 3, 4, 5, 8, 16):
        for _ in range(32):
            phis = rng.standard_normal((m, n_states, n_states))
            g0s = rng.standard_normal((m, n_states, n_inputs))
            g1s = rng.standard_normal((m, n_states, n_inputs))
            xs = rng.standard_normal((m, n_states))
            us = rng.standard_normal((m, n_inputs))
            ups = rng.standard_normal((m, n_inputs))
            batched = (
                phis @ xs[:, :, None]
                + g0s @ us[:, :, None]
                + g1s @ ups[:, :, None]
            )
            if not all(
                np.array_equal(
                    batched[i, :, 0],
                    phis[i] @ xs[i] + g0s[i] @ us[i] + g1s[i] @ ups[i],
                )
                for i in range(m)
            ):
                safe = False
                break
        if not safe:
            break
    _STACKED_PROBE[key] = safe
    return safe


class _PlantDiscretization:
    """Cached ``Phi``/``Gamma`` family of one ``(dynamics, period)`` pair."""

    def __init__(self, dynamics: ContinuousStateSpace, period: float):
        self.dynamics = dynamics
        self.period = period
        self.phi, self.gamma_full = zoh_integrals(dynamics.a, dynamics.b, period)
        self.pairs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def gammas(self, delay: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(Gamma0(d), Gamma1(d))`` for one intra-sample delay."""
        key = delay_key(delay)
        cached = self.pairs.get(key)
        if cached is not None:
            return cached
        delay = min(max(delay, 0.0), self.period)
        if delay <= 0.0:
            pair = (self.gamma_full, np.zeros_like(self.gamma_full))
        elif delay >= self.period:
            pair = (np.zeros_like(self.gamma_full), self.gamma_full)
        else:
            exp_trail, gamma0 = zoh_integrals(
                self.dynamics.a, self.dynamics.b, self.period - delay
            )
            _, gamma_lead = zoh_integrals(self.dynamics.a, self.dynamics.b, delay)
            pair = (gamma0, exp_trail @ gamma_lead)
        self.pairs[key] = pair
        return pair


class ZOHCache:
    """Process-wide memo of delayed-ZOH discretisations.

    Thread-safe; concurrent lookups of a missing entry may both compute
    it (the matrix exponential is deterministic, so last-write-wins is
    harmless) but never corrupt the table.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._plants: Dict[Tuple, _PlantDiscretization] = {}
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "plants": len(self._plants),
                "delay_entries": sum(
                    len(p.pairs) for p in self._plants.values()
                ),
                "hits": self._hits,
                "misses": self._misses,
            }

    def clear(self) -> None:
        with self._lock:
            self._plants.clear()
            self._hits = 0
            self._misses = 0

    def plant(
        self, dynamics: ContinuousStateSpace, period: float
    ) -> _PlantDiscretization:
        """The cached discretisation family for ``(dynamics, period)``."""
        key = (_dynamics_key(dynamics), round(period, 12))
        with self._lock:
            entry = self._plants.get(key)
            if entry is not None:
                self._hits += 1
                return entry
            self._misses += 1
        entry = _PlantDiscretization(dynamics, period)
        with self._lock:
            return self._plants.setdefault(key, entry)


#: Shared across every co-simulation in the process (and, under a forked
#: process pool, inherited warm by the workers).
GLOBAL_ZOH_CACHE = ZOHCache()


class DelayedStepper:
    """Steps one plant with per-sample delays via the shared cache."""

    def __init__(
        self,
        dynamics: ContinuousStateSpace,
        period: float,
        cache: Optional[ZOHCache] = None,
    ):
        cache = cache if cache is not None else GLOBAL_ZOH_CACHE
        self._disc = cache.plant(dynamics, period)

    @property
    def phi(self) -> np.ndarray:
        return self._disc.phi

    def step(
        self, x: np.ndarray, u: np.ndarray, u_prev: np.ndarray, delay: float
    ) -> np.ndarray:
        gamma0, gamma1 = self._disc.gammas(delay)
        return self._disc.phi @ x + gamma0 @ u + gamma1 @ u_prev


class PlantStepperBank:
    """Steps a fleet of plants, vectorizing same-dynamics groups.

    Applications registered with identical ``(dynamics, period)`` share
    one cached discretisation; when two or more of them step with the
    same delay at the same instant, their states are advanced as stacked
    rows with a single matrix product per term.  Plants left over as
    singletons — heterogeneous dynamics sharing only their state/input
    shape — are merged into one batched 3-D matmul per shape when
    :func:`stacked_safe` certifies the platform reproduces the scalar
    products bitwise; otherwise they step with per-application products.
    """

    def __init__(self, cache: Optional[ZOHCache] = None):
        self._cache = cache if cache is not None else GLOBAL_ZOH_CACHE
        self._members: Dict[str, Tuple[Tuple, _PlantDiscretization]] = {}
        self._groups: Dict[Tuple, List[str]] = {}
        self.vector_steps = 0
        self.scalar_steps = 0
        self.stacked_steps = 0

    def register(
        self, name: str, dynamics: ContinuousStateSpace, period: float
    ) -> None:
        key = (_dynamics_key(dynamics), round(period, 12))
        self._members[name] = (key, self._cache.plant(dynamics, period))
        self._groups.setdefault(key, []).append(name)

    def step_all(
        self,
        states: Dict[str, np.ndarray],
        requests: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
    ) -> None:
        """Advance every requested plant one interval, in place.

        ``requests`` maps application name to ``(u, u_prev, delay)``.
        ``states`` is mutated with the post-interval states.
        """
        remaining = set(requests)
        solos: List[Tuple[str, np.ndarray, np.ndarray, np.ndarray]] = []
        for members in self._groups.values():
            due = [name for name in members if name in remaining]
            if not due:
                continue
            remaining.difference_update(due)
            disc = self._members[due[0]][1]
            by_delay: Dict[int, List[str]] = {}
            for name in due:
                by_delay.setdefault(delay_key(requests[name][2]), []).append(name)
            for names in by_delay.values():
                gamma0, gamma1 = disc.gammas(requests[names[0]][2])
                if len(names) == 1:
                    solos.append((names[0], disc.phi, gamma0, gamma1))
                else:
                    x = np.stack([states[name] for name in names])
                    u = np.stack([requests[name][0] for name in names])
                    u_prev = np.stack([requests[name][1] for name in names])
                    advanced = (
                        x @ disc.phi.T + u @ gamma0.T + u_prev @ gamma1.T
                    )
                    for row, name in enumerate(names):
                        states[name] = advanced[row]
                    self.vector_steps += len(names)
        if remaining:
            raise KeyError(
                f"step requested for unregistered application(s) {sorted(remaining)}"
            )
        if solos:
            self._step_solos(states, requests, solos)

    def _step_solos(
        self,
        states: Dict[str, np.ndarray],
        requests: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
        solos: List[Tuple[str, np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        """Step the plants that ended up alone in their (group, delay)
        bucket, stacking same-shape ones across different dynamics.

        Plants are mutually independent within one instant, so deferring
        the singleton steps behind the vectorized groups cannot change
        any value; the stacked 3-D matmul is used only where the
        :func:`stacked_safe` probe holds, so the states it writes are
        bitwise those of the scalar products.
        """
        scalar = solos
        if len(solos) >= 2:
            by_shape: Dict[Tuple[int, int], List[Tuple]] = {}
            for entry in solos:
                by_shape.setdefault(
                    (entry[1].shape[0], entry[2].shape[1]), []
                ).append(entry)
            scalar = []
            for shape, entries in by_shape.items():
                if len(entries) >= 2 and stacked_safe(*shape):
                    phis = np.stack([e[1] for e in entries])
                    g0s = np.stack([e[2] for e in entries])
                    g1s = np.stack([e[3] for e in entries])
                    x = np.stack([states[e[0]] for e in entries])[:, :, None]
                    u = np.stack([requests[e[0]][0] for e in entries])
                    u_prev = np.stack([requests[e[0]][1] for e in entries])
                    advanced = (
                        phis @ x + g0s @ u[:, :, None] + g1s @ u_prev[:, :, None]
                    )
                    for row, entry in enumerate(entries):
                        states[entry[0]] = advanced[row, :, 0]
                    self.stacked_steps += len(entries)
                else:
                    scalar.extend(entries)
        for name, phi, gamma0, gamma1 in scalar:
            u, u_prev, _ = requests[name]
            states[name] = phi @ states[name] + gamma0 @ u + gamma1 @ u_prev
            self.scalar_steps += 1


__all__ = [
    "DelayedStepper",
    "GLOBAL_ZOH_CACHE",
    "PlantStepperBank",
    "ZOHCache",
    "delay_key",
    "stacked_safe",
]
