"""Background bus traffic for the dynamic segment.

Real automotive buses carry far more than the control loops under study;
the paper's worst-case ET delay exists precisely because other messages
contend for the dynamic segment.  :class:`BackgroundTraffic` injects
periodic ET frames into the co-simulation so the control messages
experience realistic (and worst-case-approaching) jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.flexray.frame import FrameSpec, Message
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class TrafficStream:
    """One periodic background message stream."""

    spec: FrameSpec
    period: float
    offset: float = 0.0

    def __post_init__(self):
        check_positive(self.period, "period")
        check_nonnegative(self.offset, "offset")

    def releases_between(self, start: float, end: float) -> List[float]:
        """Release instants in ``[start, end)``."""
        if end <= self.offset:
            return []
        first = max(0, int((start - self.offset) / self.period - 1e-9))
        releases = []
        k = first
        while True:
            t = self.offset + k * self.period
            if t >= end:
                break
            if t >= start:
                releases.append(t)
            k += 1
        return releases


@dataclass
class BackgroundTraffic:
    """A set of periodic background streams feeding the dynamic segment."""

    streams: List[TrafficStream] = field(default_factory=list)

    def add(self, stream: TrafficStream) -> None:
        if any(s.spec.frame_id == stream.spec.frame_id for s in self.streams):
            raise ValueError(
                f"duplicate background frame id {stream.spec.frame_id}"
            )
        self.streams.append(stream)

    def messages_between(self, start: float, end: float) -> List[Message]:
        """All background messages released in ``[start, end)``."""
        messages = []
        for stream in self.streams:
            for release in stream.releases_between(start, end):
                messages.append(Message(spec=stream.spec, release_time=release))
        messages.sort(key=lambda m: (m.release_time, m.spec.frame_id))
        return messages

    @property
    def frames(self) -> List[FrameSpec]:
        return [stream.spec for stream in self.streams]


def heavy_background_traffic(
    count: int = 8,
    first_frame_id: int = 100,
    period: float = 0.005,
    payload_bits: int = 256,
) -> BackgroundTraffic:
    """A bus-stressing preset: ``count`` high-rate wide frames.

    Frame IDs start above the control frames' (so control traffic keeps
    priority, as a sane integrator would configure) but their sheer
    volume stretches control-message latencies toward the worst case.
    """
    traffic = BackgroundTraffic()
    for index in range(count):
        traffic.add(
            TrafficStream(
                spec=FrameSpec(
                    frame_id=first_frame_id + index,
                    payload_bits=payload_bits,
                    sender=f"background-{index}",
                ),
                period=period,
                offset=0.0,
            )
        )
    return traffic


__all__ = ["BackgroundTraffic", "TrafficStream", "heavy_background_traffic"]
