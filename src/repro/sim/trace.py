"""Simulation traces and deadline reporting (Figure 5 data).

The co-simulation records, for every application and sampling instant,
the plant-state norm, the communication state and the sensor-to-actuator
delay actually experienced.  Helpers extract the TT/ET interval structure
shown as colour bands in the paper's Figure 5 and render an ASCII
version of the plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.runtime import CommState


@dataclass
class AppTrace:
    """Time series of one application over a co-simulation run."""

    name: str
    threshold: float
    deadline: float
    times: List[float] = field(default_factory=list)
    norms: List[float] = field(default_factory=list)
    states: List[CommState] = field(default_factory=list)
    delays: List[float] = field(default_factory=list)
    response_times: List[float] = field(default_factory=list)

    def append(self, time: float, norm: float, state: CommState, delay: float) -> None:
        self.times.append(time)
        self.norms.append(norm)
        self.states.append(state)
        self.delays.append(delay)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.norms)

    def tt_intervals(self) -> List[Tuple[float, float]]:
        """Closed time intervals during which the app held a TT slot.

        These are the blue regions of the paper's Figure 5.
        """
        intervals: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for time, state in zip(self.times, self.states):
            holding = state is CommState.TT_HOLDING
            if holding and start is None:
                start = time
            elif not holding and start is not None:
                intervals.append((start, time))
                start = None
        if start is not None:
            intervals.append((start, self.times[-1]))
        return intervals

    def settling_time(self) -> Optional[float]:
        """First time after which the norm stays at or below threshold."""
        norms = np.asarray(self.norms)
        above = np.flatnonzero(norms > self.threshold)
        if above.size == 0:
            return self.times[0] if self.times else None
        if above[-1] == norms.size - 1:
            return None
        return self.times[int(above[-1]) + 1]

    def deadline_met(self) -> bool:
        """Whether every completed disturbance met the deadline."""
        return all(r <= self.deadline + 1e-9 for r in self.response_times)

    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0

    def qoc(self) -> float:
        """Quality-of-control cost: integral of ``||x||^2`` over the run.

        Left-rectangle quadrature on the recorded sampling grid (exact
        for the piecewise-constant inter-sample norm the trace stores).
        Lower is better; multi-rate traces integrate each application on
        its own grid, so costs stay comparable across periods.
        """
        if len(self.times) < 2:
            return 0.0
        times = np.asarray(self.times)
        norms = np.asarray(self.norms)
        return float(np.sum(norms[:-1] ** 2 * np.diff(times)))

    def to_csv(self) -> str:
        """Render the trace as CSV (time, norm, state, delay) for export."""
        lines = ["time,norm,state,delay"]
        for time, norm, state, delay in zip(
            self.times, self.norms, self.states, self.delays
        ):
            lines.append(f"{time:.6f},{norm:.9g},{state.value},{delay:.6f}")
        return "\n".join(lines) + "\n"

    def ascii_plot(self, width: int = 72, height: int = 12) -> str:
        """Render the norm trajectory with TT-interval markers.

        ``#`` samples are transmitted over TT, ``*`` over ET; the ``-``
        row marks the threshold.
        """
        if not self.times:
            return "(empty trace)"
        norms = np.asarray(self.norms)
        times = np.asarray(self.times)
        top = max(float(norms.max()), self.threshold * 1.5, 1e-9)
        columns = np.clip(
            ((times - times[0]) / max(times[-1] - times[0], 1e-12) * (width - 1)).astype(int),
            0,
            width - 1,
        )
        grid = [[" "] * width for _ in range(height)]
        threshold_row = height - 1 - int(self.threshold / top * (height - 1))
        for col in range(width):
            grid[threshold_row][col] = "-"
        for col, norm, state in zip(columns, norms, self.states):
            row = height - 1 - int(min(norm, top) / top * (height - 1))
            grid[row][col] = "#" if state is CommState.TT_HOLDING else "*"
        header = (
            f"{self.name}: ||x|| vs t  (deadline {self.deadline}s, "
            f"threshold {self.threshold}, # = TT, * = ET)"
        )
        return "\n".join([header] + ["".join(row) for row in grid])


@dataclass
class SimulationTrace:
    """All application traces of one co-simulation run."""

    apps: Dict[str, AppTrace] = field(default_factory=dict)
    horizon: float = 0.0

    def add(self, trace: AppTrace) -> None:
        if trace.name in self.apps:
            raise ValueError(f"duplicate trace for application {trace.name!r}")
        self.apps[trace.name] = trace

    def __getitem__(self, name: str) -> AppTrace:
        return self.apps[name]

    def all_deadlines_met(self) -> bool:
        return all(trace.deadline_met() for trace in self.apps.values())

    def qoc(self) -> float:
        """Fleet QoC: mean of the per-application quadratic costs."""
        if not self.apps:
            return 0.0
        return float(
            np.mean([trace.qoc() for trace in self.apps.values()])
        )

    def write_csv(self, directory) -> List[str]:
        """Write one ``<app>.csv`` per application; returns the paths."""
        import os

        os.makedirs(directory, exist_ok=True)
        paths = []
        for name, trace in sorted(self.apps.items()):
            path = os.path.join(directory, f"{name}.csv")
            with open(path, "w") as handle:
                handle.write(trace.to_csv())
            paths.append(path)
        return paths

    def summary_rows(self) -> List[Dict[str, object]]:
        """One summary dict per application (for reports and benches)."""
        rows = []
        for name in sorted(self.apps):
            trace = self.apps[name]
            responses = trace.response_times
            rows.append(
                {
                    "app": name,
                    "responses": list(responses),
                    "worst_response": max(responses) if responses else None,
                    "deadline": trace.deadline,
                    "deadline_met": trace.deadline_met(),
                    "tt_intervals": trace.tt_intervals(),
                    "max_delay": trace.max_delay(),
                }
            )
        return rows


__all__ = ["AppTrace", "SimulationTrace"]
