"""Task and ECU model (paper Section II).

Each control application consists of three tasks: sensing ``Ts`` and
control ``Tc`` on one ECU, actuation ``Ta`` on another; the control
input travels between them over the bus.  For the timing granularity of
this reproduction the relevant quantity is the *computation latency*
between a sampling instant and the moment the control message is
released to the bus; the ECU model computes it under non-preemptive
fixed-priority scheduling of the periodic task set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic task on an ECU.

    Attributes
    ----------
    name:
        Task identifier (e.g. ``"Ts,3"``).
    period:
        Activation period (seconds).
    wcet:
        Worst-case execution time (seconds).
    priority:
        Smaller number = higher priority.
    offset:
        Release offset of the first job (seconds).
    """

    name: str
    period: float
    wcet: float
    priority: int = 0
    offset: float = 0.0

    def __post_init__(self):
        check_positive(self.period, "period")
        check_positive(self.wcet, "wcet")
        check_nonnegative(self.offset, "offset")
        if self.wcet > self.period:
            raise ValueError(
                f"task {self.name}: wcet ({self.wcet}) must not exceed the "
                f"period ({self.period})"
            )


@dataclass
class Ecu:
    """An ECU running a fixed set of periodic tasks.

    The analysis here is the classical non-preemptive fixed-priority
    response-time bound: blocking by the longest lower-priority WCET plus
    interference from higher-priority jobs.
    """

    name: str
    tasks: List[PeriodicTask] = field(default_factory=list)

    def add_task(self, task: PeriodicTask) -> None:
        if any(existing.name == task.name for existing in self.tasks):
            raise ValueError(f"duplicate task name {task.name!r} on ECU {self.name}")
        self.tasks.append(task)

    def utilization(self) -> float:
        return sum(task.wcet / task.period for task in self.tasks)

    def response_time_bound(self, task: PeriodicTask, max_iterations: int = 10_000) -> float:
        """Worst-case response time of ``task`` on this ECU.

        Uses the standard recurrence for non-preemptive fixed-priority
        scheduling; raises :class:`ValueError` if the task set is
        overloaded (no fixed point below the period).
        """
        if task not in self.tasks:
            raise ValueError(f"task {task.name} is not assigned to ECU {self.name}")
        higher = [t for t in self.tasks if t.priority < task.priority]
        lower = [t for t in self.tasks if t.priority > task.priority]
        blocking = max((t.wcet for t in lower), default=0.0)
        response = blocking + task.wcet
        for _ in range(max_iterations):
            interference = sum(
                _ceil_div(response, t.period) * t.wcet for t in higher
            )
            next_response = blocking + task.wcet + interference
            # Numeric fixed-point convergence test, not an event-instant
            # compare: the recurrence iterates a float bound to tolerance.
            if abs(next_response - response) <= 1e-15:  # repro: allow[QA003]
                break
            response = next_response
            if response > task.period:
                raise ValueError(
                    f"task {task.name} on ECU {self.name} misses its period "
                    f"(response bound {response:.6f}s > period {task.period}s)"
                )
        return response


def _ceil_div(x: float, y: float) -> int:
    from math import ceil

    return int(ceil(x / y - 1e-12))


@dataclass(frozen=True)
class ApplicationTasks:
    """The three-task chain of one control application.

    Provides the release latency (sampling instant to message release)
    used by the co-simulation: sensing plus control response times on the
    sensor-side ECU.
    """

    sensing: PeriodicTask
    control: PeriodicTask
    actuation: PeriodicTask
    sensor_ecu: Ecu
    actuator_ecu: Ecu

    def release_latency(self) -> float:
        """Worst-case delay from sampling to the bus-release of ``u``."""
        return self.sensor_ecu.response_time_bound(
            self.sensing
        ) + self.sensor_ecu.response_time_bound(self.control)

    def actuation_latency(self) -> float:
        """Worst-case delay from message delivery to actuation."""
        return self.actuator_ecu.response_time_bound(self.actuation)


def simple_application_tasks(
    name: str,
    period: float,
    sensing_wcet: float = 1e-4,
    control_wcet: float = 3e-4,
    actuation_wcet: float = 1e-4,
) -> ApplicationTasks:
    """One application alone on its two ECUs (the common fast path)."""
    sensor_ecu = Ecu(name=f"{name}-sense-ecu")
    actuator_ecu = Ecu(name=f"{name}-act-ecu")
    sensing = PeriodicTask(name=f"Ts,{name}", period=period, wcet=sensing_wcet, priority=0)
    control = PeriodicTask(name=f"Tc,{name}", period=period, wcet=control_wcet, priority=1)
    actuation = PeriodicTask(name=f"Ta,{name}", period=period, wcet=actuation_wcet, priority=0)
    sensor_ecu.add_task(sensing)
    sensor_ecu.add_task(control)
    actuator_ecu.add_task(actuation)
    return ApplicationTasks(
        sensing=sensing,
        control=control,
        actuation=actuation,
        sensor_ecu=sensor_ecu,
        actuator_ecu=actuator_ecu,
    )


__all__ = [
    "ApplicationTasks",
    "Ecu",
    "PeriodicTask",
    "simple_application_tasks",
]
