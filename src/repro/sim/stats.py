"""Streaming sample statistics for Monte-Carlo aggregation.

Replication sweeps used to re-scan every stored row to compute a cell's
mean/std/CI; :class:`Welford` maintains the same numbers incrementally
(Welford's online algorithm), so aggregation cost is O(1) per landed
replication no matter how large the sweep grows, and the adaptive
scheduler can read an up-to-date confidence interval between rounds
without touching the row log.

Confidence half-widths use Student-t critical values instead of the
normal z = 1.96: at the small sample sizes where sequential stopping
rules actually look (n = 2..10), the normal approximation understates
the 95 % interval by up to a factor of 6.5 (t(1) = 12.706), which would
make the stopping rule fire long before the estimate deserved it.
"""

from __future__ import annotations

import math
from typing import Any, Dict

#: Two-sided 95 % Student-t critical values by degrees of freedom.
#: Above the table the distribution is effectively normal; between
#: entries (df > 30) the next *lower* tabulated df is used, which
#: rounds the critical value up — conservative for stopping rules.
_T95: Dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 50: 2.009, 60: 2.000, 80: 1.990, 100: 1.984,
    120: 1.980,
}
_T95_STEPS = sorted(_T95)


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df in _T95:
        return _T95[df]
    if df > _T95_STEPS[-1]:
        return 1.960
    # df > 30 between table rows: fall back to the next lower entry.
    below = max(step for step in _T95_STEPS if step <= df)
    return _T95[below]


class Welford:
    """Single-pass mean/variance accumulator (Welford's algorithm).

    Tracks count, mean, M2 (sum of squared deviations), and extremes;
    :meth:`ci95` yields the Student-t 95 % confidence half-width of the
    mean.  Numerically stable for the long replication streams adaptive
    sweeps produce, and O(1) memory regardless of stream length.
    """

    __slots__ = ("n", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def push(self, value: float) -> None:
        value = float(value)
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Sample variance (n - 1 denominator); 0.0 below two samples."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def ci95(self) -> float:
        """95 % confidence half-width of the mean (Student-t).

        0.0 below two samples — with one observation the interval is
        undefined, and callers (the stopping rule) must gate on ``n``
        before trusting it.
        """
        if self.n < 2:
            return 0.0
        return t_critical_95(self.n - 1) * self.std / math.sqrt(self.n)

    def to_dict(self) -> Dict[str, Any]:
        """The sweep-aggregation record: n / mean / std / ci95 / min / max."""
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95(),
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Welford(n={self.n}, mean={self.mean:.6g}, std={self.std:.6g})"


__all__ = ["Welford", "t_critical_95"]
