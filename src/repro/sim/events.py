"""Minimal deterministic discrete-event kernel.

The co-simulator schedules sampling instants, disturbance arrivals and
bus-cycle boundaries on this queue.  Events at equal times fire in
insertion order (a monotonically increasing sequence number breaks
ties), which keeps multi-application runs reproducible.

The queue is a hot path: a 20 s co-simulation of a six-application
fleet pushes and pops tens of thousands of events, so entries are plain
``(time, order, callback)`` tuples (tuple comparison short-circuits on
the leading floats — no per-entry object, no generated ``__lt__``).
Cancellation is tracked in side sets keyed by the order number, the
live-entry count is maintained incrementally (``len()`` is O(1)), and
cancelled entries still parked in the heap are compacted away once they
outnumber half of it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: A scheduled event: ``(time, order, callback)``.  Treat as opaque —
#: returned by :meth:`EventQueue.schedule`, accepted by
#: :meth:`EventQueue.cancel`.
Entry = Tuple[float, int, Callable[[float], None]]


class EventQueue:
    """Priority queue of timed callbacks."""

    __slots__ = ("_heap", "_next_order", "_now", "_live", "_pending", "_cancelled")

    def __init__(self):
        self._heap: List[Entry] = []
        self._next_order = 0
        self._now = 0.0
        self._live = 0  # scheduled, not yet fired, not cancelled
        self._pending = set()  # orders still parked in the heap
        self._cancelled = set()  # pending orders marked cancelled

    @property
    def now(self) -> float:
        """Time of the most recently fired event (0 before any fire)."""
        return self._now

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: float, callback: Callable[[float], None]) -> Entry:
        """Schedule ``callback(time)`` and return a cancellable handle.

        Raises
        ------
        ValueError
            If the event lies in the past.
        """
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time}; current time is {self._now}"
            )
        order = self._next_order
        self._next_order = order + 1
        entry = (time, order, callback)
        heapq.heappush(self._heap, entry)
        self._pending.add(order)
        self._live += 1
        return entry

    def cancel(self, entry: Entry) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelling an event that already fired is a harmless no-op.
        Cancelled entries stay parked in the heap until popped past or
        compacted; once they exceed half the heap the queue rebuilds
        itself without them so mass cancellation cannot leak memory.
        """
        order = entry[1]
        if order not in self._pending or order in self._cancelled:
            return
        self._cancelled.add(order)
        self._live -= 1
        if len(self._cancelled) > len(self._heap) // 2:
            self._compact()

    def is_cancelled(self, entry: Entry) -> bool:
        """Whether ``entry`` is queued but marked cancelled."""
        return entry[1] in self._cancelled

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        if self._cancelled:
            self._drop_cancelled()
        heap = self._heap
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time, order, callback = heapq.heappop(heap)
            self._pending.discard(order)
            if cancelled and order in cancelled:
                cancelled.discard(order)
                continue
            self._live -= 1
            self._now = time
            callback(time)
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Fire all events with time <= ``horizon`` (inclusive)."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon + 1e-12:
                break
            self.step()
        self._now = max(self._now, horizon)

    def run(self) -> int:
        """Fire events until the queue drains; returns the fire count.

        Callbacks may keep scheduling new events (the co-simulation
        kernel chains barriers this way); the queue simply runs until
        nothing is left.
        """
        # The co-simulation inner loop: aliases are safe because every
        # mutation (schedule, cancel, compaction) edits these containers
        # in place rather than rebinding the attributes.
        heap = self._heap
        pending = self._pending
        cancelled = self._cancelled
        pop = heapq.heappop
        fired = 0
        while heap:
            time, order, callback = pop(heap)
            pending.discard(order)
            if cancelled and order in cancelled:
                cancelled.discard(order)
                continue
            self._live -= 1
            self._now = time
            callback(time)
            fired += 1
        return fired

    def _drop_cancelled(self) -> None:
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][1] in cancelled:
            _, order, _ = heapq.heappop(heap)
            self._pending.discard(order)
            cancelled.discard(order)

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place, so the
        ``run()`` loop's alias stays valid)."""
        cancelled = self._cancelled
        self._heap[:] = [e for e in self._heap if e[1] not in cancelled]
        heapq.heapify(self._heap)
        self._pending.difference_update(cancelled)
        cancelled.clear()


__all__ = ["Entry", "EventQueue"]
