"""Minimal deterministic discrete-event kernel.

The co-simulator schedules sampling instants, disturbance arrivals and
bus-cycle boundaries on this queue.  Events at equal times fire in
insertion order (a monotonically increasing sequence number breaks
ties), which keeps multi-application runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class _Entry:
    time: float
    order: int
    callback: Callable[[float], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Priority queue of timed callbacks."""

    def __init__(self):
        self._heap: List[_Entry] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently fired event (0 before any fire)."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def schedule(self, time: float, callback: Callable[[float], None]) -> _Entry:
        """Schedule ``callback(time)`` and return a cancellable handle.

        Raises
        ------
        ValueError
            If the event lies in the past.
        """
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time}; current time is {self._now}"
            )
        entry = _Entry(time=time, order=next(self._counter), callback=callback)
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: _Entry) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        entry.cancelled = True

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self._now = entry.time
        entry.callback(entry.time)
        return True

    def run_until(self, horizon: float) -> None:
        """Fire all events with time <= ``horizon`` (inclusive)."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon + 1e-12:
                break
            self.step()
        self._now = max(self._now, horizon)

    def run(self) -> int:
        """Fire events until the queue drains; returns the fire count.

        Callbacks may keep scheduling new events (the co-simulation
        kernel chains barriers this way); the queue simply runs until
        nothing is left.
        """
        fired = 0
        while self.step():
            fired += 1
        return fired

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)


__all__ = ["EventQueue"]
