"""Co-simulation substrate (TrueTime substitute).

Discrete-event kernel, periodic task/ECU model, non-preemptive TT-slot
arbiter, the Figure 1 threshold-switching runtime, the multi-application
co-simulator, the pluggable network-backend registry
(:mod:`repro.sim.network`), and trace recording for Figure 5.
"""

from repro.sim.arbiter import SlotClient, SlotState, TTSlotArbiter
from repro.sim.batch import batch_capability, batch_eligible
from repro.sim.cosim import (
    KERNELS,
    CoSimApplication,
    CoSimulator,
)
from repro.sim.events import EventQueue
from repro.sim.network import (
    AnalyticNetwork,
    CanBusNetwork,
    Delivery,
    FlexRayNetwork,
    GilbertElliottLoss,
    IIDLoss,
    LossyNetwork,
    NetworkCapabilities,
    NetworkModel,
    Submission,
    build_network,
    check_network_model,
    network_names,
    register_network,
)
from repro.sim.runtime import CommState, DisturbanceRecord, SwitchingRuntime
from repro.sim.stats import Welford, t_critical_95
from repro.sim.stepper import (
    GLOBAL_ZOH_CACHE,
    DelayedStepper,
    PlantStepperBank,
    ZOHCache,
)
from repro.sim.tasks import ApplicationTasks, Ecu, PeriodicTask, simple_application_tasks
from repro.sim.trace import AppTrace, SimulationTrace
from repro.sim.traffic import BackgroundTraffic, TrafficStream, heavy_background_traffic

__all__ = [
    "AnalyticNetwork",
    "AppTrace",
    "ApplicationTasks",
    "BackgroundTraffic",
    "TrafficStream",
    "heavy_background_traffic",
    "CanBusNetwork",
    "CoSimApplication",
    "CoSimulator",
    "CommState",
    "DelayedStepper",
    "Delivery",
    "DisturbanceRecord",
    "Ecu",
    "EventQueue",
    "FlexRayNetwork",
    "GLOBAL_ZOH_CACHE",
    "GilbertElliottLoss",
    "IIDLoss",
    "KERNELS",
    "LossyNetwork",
    "NetworkCapabilities",
    "NetworkModel",
    "batch_capability",
    "batch_eligible",
    "build_network",
    "check_network_model",
    "network_names",
    "register_network",
    "PeriodicTask",
    "PlantStepperBank",
    "SimulationTrace",
    "SlotClient",
    "SlotState",
    "Submission",
    "SwitchingRuntime",
    "TTSlotArbiter",
    "Welford",
    "ZOHCache",
    "simple_application_tasks",
    "t_critical_95",
]
