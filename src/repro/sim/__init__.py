"""Co-simulation substrate (TrueTime substitute).

Discrete-event kernel, periodic task/ECU model, non-preemptive TT-slot
arbiter, the Figure 1 threshold-switching runtime, the multi-application
co-simulator, and trace recording for Figure 5.
"""

from repro.sim.arbiter import SlotClient, SlotState, TTSlotArbiter
from repro.sim.cosim import (
    AnalyticNetwork,
    CoSimApplication,
    CoSimulator,
    FlexRayNetwork,
    Submission,
)
from repro.sim.events import EventQueue
from repro.sim.runtime import CommState, DisturbanceRecord, SwitchingRuntime
from repro.sim.tasks import ApplicationTasks, Ecu, PeriodicTask, simple_application_tasks
from repro.sim.trace import AppTrace, SimulationTrace
from repro.sim.traffic import BackgroundTraffic, TrafficStream, heavy_background_traffic

__all__ = [
    "AnalyticNetwork",
    "AppTrace",
    "ApplicationTasks",
    "BackgroundTraffic",
    "TrafficStream",
    "heavy_background_traffic",
    "CoSimApplication",
    "CoSimulator",
    "CommState",
    "DisturbanceRecord",
    "Ecu",
    "EventQueue",
    "FlexRayNetwork",
    "PeriodicTask",
    "SimulationTrace",
    "SlotClient",
    "SlotState",
    "Submission",
    "SwitchingRuntime",
    "TTSlotArbiter",
    "simple_application_tasks",
]
