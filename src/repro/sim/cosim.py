"""Multi-application closed-loop co-simulation (TrueTime substitute).

Simulates several control applications sharing a FlexRay bus under the
paper's dynamic resource allocation: plants evolve in discrete time with
the sensor-to-actuator delay *actually experienced* on the bus each
sample, the threshold-switching runtimes request/release shared TT slots
through the non-preemptive deadline-priority arbiter, and everything is
recorded in :class:`~repro.sim.trace.SimulationTrace` (the data behind
the paper's Figure 5).

Three simulation kernels are provided (``kernel=`` selects one;
``"auto"``, the default, picks the fastest applicable):

* the **batch kernel** (``kernel="batch"``) is a vectorized fast path
  for fleets whose communication timeline is precomputable: every
  application on an :class:`AnalyticNetwork` (state-independent
  per-mode delay constants), or a *deterministic* FlexRay fleet —
  ``loss_rate == 0``, no background dynamic-segment traffic, stock bus
  classes — whose grant/transmit instants are replayed from the
  static-segment slot table ahead of the loop (see
  :mod:`repro.sim.batch` and :mod:`repro.sim.batch_flexray`).  It skips
  per-event dispatch entirely: sampling-tick grids are precomputed and
  same-dynamics plants advance in NumPy-batched sweeps.  Traces are
  bitwise identical to the event kernel; ineligible fleets (frame loss,
  dynamic-segment contention, subclassed networks) fall back to it
  automatically.
* the **event-driven kernel** (``kernel="event"``) schedules sampling
  ticks, disturbance arrivals, slot grant hand-overs and message
  transmission on a :class:`~repro.sim.events.EventQueue`.  Applications
  may use *different* sampling periods — a 2 ms current loop can share
  the bus with 20 ms chassis loops — and each application's state
  machine, plant step and trace samples advance at its own rate.
* the **legacy fixed-step kernel** (``kernel="legacy"``) is the
  original polling loop; it requires one shared sampling period.  On
  any shared-period scenario all kernels produce bitwise-identical
  traces (they execute the same operations in the same order), which
  the test suite asserts.

Network backends live in the :mod:`repro.sim.network` package — a
:class:`~repro.sim.network.NetworkModel` protocol, a decorator registry
(``analytic``, ``flexray``, ``can`` bundled), composable loss processes
and a conformance test kit.  :class:`AnalyticNetwork`,
:class:`FlexRayNetwork`, :class:`Submission` and :class:`Delivery` are
re-exported here for compatibility (their canonical home moved in the
network-registry refactor).

Multi-rate fleets need the incremental *event interface*
(:meth:`event_submit` / :meth:`event_advance`), which all bundled
models implement; third-party :class:`NetworkModel` objects that only
provide the batch :meth:`~NetworkModel.sample_delays` remain fully
supported for shared-period fleets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.controller import SwitchedApplication
from repro.control.disturbance import DisturbanceEvent, DisturbanceProcess
from repro.control.lti import ContinuousStateSpace
from repro.flexray.frame import FrameSpec
from repro.sim.arbiter import TTSlotArbiter
from repro.sim.events import EventQueue
from repro.sim.network import (
    AnalyticNetwork,
    Delivery,
    FlexRayNetwork,
    NetworkModel,
    Submission,
)
from repro.sim.stepper import PlantStepperBank
from repro.sim.runtime import CommState, SwitchingRuntime
from repro.sim.trace import AppTrace, SimulationTrace
from repro.utils.validation import check_positive

#: Tolerance for grouping sampling instants of different applications
#: onto one barrier (float noise in ``k * period`` products).
_TIME_TOL = 1e-12


@dataclass(frozen=True)
class CoSimApplication:
    """Everything the co-simulator needs to run one application.

    Attributes
    ----------
    app:
        Designed switched application (both mode controllers).
    dynamics:
        Continuous plant dynamics (for per-delay discretisation).
    disturbance_state:
        Plant-state jump applied when a disturbance arrives.
    disturbances:
        Arrival process of disturbances.
    deadline:
        Response-time requirement.
    slot:
        Index of the TT slot this application contends for.
    frame:
        Bus frame of this application's control messages.
    """

    app: SwitchedApplication
    dynamics: ContinuousStateSpace
    disturbance_state: np.ndarray
    disturbances: DisturbanceProcess
    deadline: float
    slot: int
    frame: FrameSpec

    @property
    def name(self) -> str:
        return self.app.name


@dataclass
class _InFlight:
    """A sampling interval awaiting its delay (lazy-resolution kernel)."""

    release: float
    period: float
    u: np.ndarray
    uses_tt: bool
    trace_index: int
    delivery: Optional[float] = None
    lost: bool = False


class _EventKernel:
    """Event-driven co-simulation over an :class:`EventQueue`.

    Per-application sampling ticks, disturbance arrivals and message
    transmission are scheduled events; ticks that coincide are coalesced
    into one barrier so that slot arbitration still happens fleet-wide
    at sampling instants, exactly as in the paper.  Two instants belong
    to the same barrier iff they round to the same **integer-nanosecond
    timestamp**: per-application tick times are independent
    ``k * period`` float products whose nominally coincident values
    drift apart by a few ulps on long horizons, and ulps stay far below
    half a nanosecond for any realistic horizon, so the rounding
    coalesces them without an epsilon comparison.

    Hot-path notes: callbacks are pre-bound per application (no closure
    allocation per tick), queue entries are plain tuples (see
    :mod:`repro.sim.events`), shared-period fleets tick through a single
    coalesced *barrier event* instead of one event per application, and
    the grant/transmit phases run as direct calls — by the time a
    barrier opens, no other event shares its timestamp, so scheduling
    them as same-time events (as earlier revisions did) bought nothing.

    Delay resolution runs in one of two modes:

    * **eager** (all applications share one period): the network is
      advanced one full interval at transmission time, exactly like the
      legacy kernel — same calls, same order, bitwise-equal traces.
    * **lazy** (multi-rate fleets): messages are submitted when
      released, the bus advances incrementally at each barrier, and each
      application's interval is resolved at its *next* tick, clamped to
      its own period.  Requires the network's event interface.
    """

    def __init__(self, sim: "CoSimulator", horizon: float):
        self.sim = sim
        self.apps = sim.applications
        self.by_name = {a.name: a for a in self.apps}
        self.network = sim.network
        self.index = {a.name: i for i, a in enumerate(self.apps)}
        self.periods = {a.name: sim.period_of(a) for a in self.apps}
        self.eager = len({round(p, 12) for p in self.periods.values()}) == 1
        if not self.eager:
            missing = [
                m
                for m in ("event_submit", "event_advance")
                if not hasattr(self.network, m)
            ]
            if missing:
                raise ValueError(
                    "multi-rate co-simulation needs a network model with the "
                    f"event interface; {type(self.network).__name__} lacks "
                    f"{missing} (shared-period fleets only need sample_delays)"
                )
        self.horizon = horizon
        self.steps = {
            name: int(np.ceil(horizon / p)) for name, p in self.periods.items()
        }
        self.queue = EventQueue()
        self.bank = PlantStepperBank()
        self.states: Dict[str, np.ndarray] = {}
        self.held: Dict[str, np.ndarray] = {}
        self.pending: Dict[str, Deque[DisturbanceEvent]] = {}
        self.tick_index: Dict[str, int] = {}
        self.inflight: Dict[str, _InFlight] = {}
        self.traces = SimulationTrace(horizon=horizon)
        self.slot_owner: Dict[int, Optional[str]] = {}
        self._names = [a.name for a in self.apps]
        self._due: List[str] = []
        self._final_due: List[str] = []
        self._all_due = False
        self._tick_cbs: Dict[str, Callable[[float], None]] = {}
        self._comm_states: Dict[str, CommState] = {}

    # -- helpers ----------------------------------------------------------

    def _tick_time(self, name: str) -> float:
        return self.tick_index[name] * self.periods[name]

    def _norm(self, name: str) -> float:
        return float(np.linalg.norm(self.states[name]))

    def _maybe_flush(self, t: float) -> None:
        """Open the barrier once every event at this instant has fired.

        Events share a barrier iff their times round to the same integer
        nanosecond (coincident instants are exact-float-equal in the
        shared-period case — the first comparison — and within ulps of
        each other on multi-rate grids, far below 0.5 ns)."""
        nxt = self.queue.peek_time()
        if nxt is not None:
            if nxt == t:
                return
            if round(nxt * 1e9) == round(t * 1e9):
                return
        if self._due or self._final_due or self._all_due:
            self._sample_phase(t)

    # -- setup ------------------------------------------------------------

    def run(self) -> SimulationTrace:
        for app in self.apps:
            name = app.name
            self.bank.register(name, app.dynamics, self.periods[name])
            self.states[name] = np.zeros(app.dynamics.n_states)
            self.held[name] = np.zeros(app.app.et.plant.n_inputs)
            self.pending[name] = deque()
            self.tick_index[name] = 0
            self.slot_owner.setdefault(app.slot, None)
            self.traces.add(
                AppTrace(
                    name=name,
                    threshold=app.app.threshold,
                    deadline=app.deadline,
                )
            )
        # Disturbance arrivals: applied at the application's first
        # sampling instant at or after the arrival (the paper's
        # sample-aligned model); arrivals past the last tick never apply.
        for app in self.apps:
            name = app.name
            p = self.periods[name]
            for event in app.disturbances.events_until(self.horizon):
                k = max(0, int(np.ceil((event.time - _TIME_TOL) / p)))
                if k >= self.steps[name]:
                    continue
                self.queue.schedule(k * p, partial(self._on_disturbance, name, event))
        if self.eager:
            # Shared period: every application ticks at every instant,
            # so one barrier event replaces n per-application events.
            self.queue.schedule(0.0, self._on_barrier)
        else:
            for name in self._names:
                cb = partial(self._on_tick, name)
                self._tick_cbs[name] = cb
                self.queue.schedule(0.0, cb)
        self.queue.run()
        return self.traces

    # -- event callbacks (pre-bound once, reused every tick) ---------------

    def _on_tick(self, name: str, t: float) -> None:
        self._due.append(name)
        self._maybe_flush(t)

    def _on_barrier(self, t: float) -> None:
        self._all_due = True
        self._maybe_flush(t)

    def _on_final(self, name: str, t: float) -> None:
        self._final_due.append(name)
        self._maybe_flush(t)

    def _on_final_barrier(self, t: float) -> None:
        self._final_due = list(self._names)
        self._maybe_flush(t)

    def _on_disturbance(self, name: str, event: DisturbanceEvent, t: float) -> None:
        self.pending[name].append(event)
        self._maybe_flush(t)

    # -- barrier phases ---------------------------------------------------

    def _sample_phase(self, t: float) -> None:
        """Resolve finished intervals, apply disturbances, advance the
        per-application state machines; chains into the grant phase."""
        sim = self.sim
        if self._all_due:
            self._all_due = False
            due = self._names
        else:
            due = sorted(self._due, key=self.index.__getitem__)
            self._due = []
        finals = sorted(self._final_due, key=self.index.__getitem__)
        self._final_due = []
        if not self.eager:
            self._resolve(t, due + finals)
        for name in finals:
            runtime = sim.runtimes[name]
            self.traces[name].append(
                self.steps[name] * self.periods[name],
                self._norm(name),
                runtime.state,
                0.0,
            )
            self.traces[name].response_times = runtime.response_times()
        if not due:
            if not self.eager and self.queue.peek_time() is not None:
                # Keep background traffic flowing between barriers even
                # when no control loop sampled at this one.
                self.network.event_submit(t, self.queue.peek_time(), [])
            return
        # In the eager (shared-period) case every due tick time is the
        # barrier time itself — the same k * period float product the
        # barrier event was scheduled with — so the per-application
        # products are skipped.
        eager = self.eager
        for name in due:
            app = self.by_name[name]
            events = self.pending[name]
            if events:
                tick = t if eager else self._tick_time(name)
                while events:
                    event = events.popleft()
                    self.states[name] = (
                        self.states[name] + event.magnitude * app.disturbance_state
                    )
                    sim.runtimes[name].on_disturbance(tick)
        sim.arbiter.grant_pending()
        self._comm_states = comm_states = {}
        runtimes = sim.runtimes
        for name in due:
            comm_states[name] = runtimes[name].update(
                t if eager else self._tick_time(name), self._norm(name)
            )
        self._active_due = due
        self._grant_phase(t)

    def _grant_phase(self, t: float) -> None:
        """Hand freed slots over; a grant may flip a *due* application
        from WAITING to TT for this very sample (sample-aligned switch)."""
        sim = self.sim
        granted = sim.arbiter.grant_pending()
        for name in granted:
            runtime = sim.runtimes.get(name)
            if (
                name in self._comm_states
                and runtime is not None
                and runtime.state is CommState.WAITING
            ):
                self._comm_states[name] = runtime.update(
                    t if self.eager else self._tick_time(name), self._norm(name)
                )
        self._transmit_phase(t)

    def _transmit_phase(self, t: float) -> None:
        """Propagate slot ownership, compute control inputs, put the
        messages on the bus, and schedule the next sampling ticks."""
        sim = self.sim
        due = self._active_due
        for app in self.apps:
            holder = sim.arbiter.holder_of_slot(app.slot)
            if self.slot_owner[app.slot] != holder:
                spec = None
                if holder is not None:
                    spec = next(a.frame for a in self.apps if a.name == holder)
                self.network.on_slot_change(app.slot, spec)
                self.slot_owner[app.slot] = holder
        submissions: List[Submission] = []
        inputs: Dict[str, np.ndarray] = {}
        eager = self.eager
        for name in due:
            app = self.by_name[name]
            uses_tt = self._comm_states[name] is CommState.TT_HOLDING
            controller = app.app.tt if uses_tt else app.app.et
            u = controller.control(self.states[name], self.held[name])
            inputs[name] = u
            submissions.append(
                Submission(
                    name=name,
                    spec=app.frame,
                    uses_tt=uses_tt,
                    slot=app.slot if uses_tt else None,
                    release_time=t if eager else self._tick_time(name),
                )
            )
        if self.eager:
            self._resolve_eager(t, due, inputs, submissions)
        else:
            for name in due:
                uses_tt = self._comm_states[name] is CommState.TT_HOLDING
                trace = self.traces[name]
                trace.append(
                    self._tick_time(name),
                    self._norm(name),
                    self._comm_states[name],
                    float("nan"),  # patched when the interval resolves
                )
                self.inflight[name] = _InFlight(
                    release=self._tick_time(name),
                    period=self.periods[name],
                    u=np.asarray(inputs[name], dtype=float),
                    uses_tt=uses_tt,
                    trace_index=len(trace.delays) - 1,
                )
        for name in due:
            self.tick_index[name] += 1
        if self.eager:
            lead = due[0]
            k = self.tick_index[lead]
            if k < self.steps[lead]:
                self.queue.schedule(k * self.periods[lead], self._on_barrier)
            elif k == self.steps[lead]:
                self.queue.schedule(k * self.periods[lead], self._on_final_barrier)
        else:
            for name in due:
                k = self.tick_index[name]
                if k < self.steps[name]:
                    self.queue.schedule(k * self.periods[name], self._tick_cbs[name])
                elif k == self.steps[name]:
                    self.queue.schedule(
                        k * self.periods[name], partial(self._on_final, name)
                    )
        if not self.eager:
            window_end = self.queue.peek_time()
            if window_end is None:
                window_end = t
            self.network.event_submit(t, window_end, submissions)

    # -- delay resolution -------------------------------------------------

    def _resolve_eager(
        self,
        t: float,
        due: List[str],
        inputs: Dict[str, np.ndarray],
        submissions: List[Submission],
    ) -> None:
        """Shared-period resolution: one batch network call per barrier,
        the exact call sequence of the legacy fixed-step kernel."""
        sim = self.sim
        period = self.periods[due[0]]
        delays = self.network.sample_delays(t, period, submissions)
        if sim.equalize_delays:
            for name in due:
                if not np.isfinite(delays[name]):
                    continue  # lost frame: nothing to equalize
                app = self.by_name[name]
                uses_tt = self._comm_states[name] is CommState.TT_HOLDING
                design = (app.app.tt if uses_tt else app.app.et).plant.delay
                if delays[name] <= design + 1e-12:
                    delays[name] = design
                else:
                    sim.jitter_violations += 1
        requests: Dict[str, Tuple[np.ndarray, np.ndarray, float]] = {}
        lost_names = set()
        for name in due:
            delay = delays[name]
            lost = not np.isfinite(delay)
            if lost:
                # The command never reached the actuator: the previous
                # input holds for the whole period and stays latched.
                delay = self.periods[name]
                lost_names.add(name)
            self.traces[name].append(
                t, self._norm(name), self._comm_states[name], delay
            )
            requests[name] = (inputs[name], self.held[name], delay)
        self.bank.step_all(self.states, requests)
        for name in due:
            if name not in lost_names:
                self.held[name] = np.asarray(inputs[name], dtype=float)

    def _resolve(self, t: float, names: List[str]) -> None:
        """Multi-rate resolution: advance the bus to ``t`` and settle
        every interval that ends at this barrier."""
        sim = self.sim
        for delivery in self.network.event_advance(t):
            record = self.inflight.get(delivery.name)
            if record is None:
                continue
            # Exact compare: both values are the same tick_index * period
            # product, so a live interval matches bitwise and a stale one
            # differs by at least a full period.
            if delivery.release_time == record.release:
                record.delivery = delivery.delivery_time
                record.lost = delivery.lost
            # else: stale delivery from an interval already clamped
        requests: Dict[str, Tuple[np.ndarray, np.ndarray, float]] = {}
        resolved: List[Tuple[str, _InFlight, bool]] = []
        for name in names:
            record = self.inflight.pop(name, None)
            if record is None:
                continue  # the very first tick has no interval behind it
            period = record.period
            if record.lost:
                delay = period
            else:
                if record.delivery is None:
                    delay = period
                    clamped = getattr(self.network, "event_clamped", None)
                    if clamped is not None:
                        clamped()
                else:
                    delay = min(record.delivery - record.release, period)
                if sim.equalize_delays:
                    app = self.by_name[name]
                    design = (
                        app.app.tt if record.uses_tt else app.app.et
                    ).plant.delay
                    if delay <= design + 1e-12:
                        delay = design
                    else:
                        sim.jitter_violations += 1
            self.traces[name].delays[record.trace_index] = delay
            requests[name] = (record.u, self.held[name], delay)
            resolved.append((name, record, record.lost))
        self.bank.step_all(self.states, requests)
        for name, record, lost in resolved:
            if not lost:
                self.held[name] = record.u


#: Kernel names accepted by :class:`CoSimulator`.
KERNELS = ("auto", "batch", "event", "legacy")


class CoSimulator:
    """Co-simulation of applications sharing TT slots.

    ``kernel=`` selects the simulation kernel:

    * ``"auto"`` (default) — the batch fast path when the fleet is
      eligible (see :func:`repro.sim.batch.batch_capability`: analytic
      network, or deterministic loss-free static-slot FlexRay), the
      event kernel otherwise;
    * ``"batch"`` — the vectorized fast path (analytic constants or a
      precomputed FlexRay schedule walk), falling back to the event
      kernel when the fleet is ineligible (frame loss, background
      dynamic-segment traffic, subclassed networks);
    * ``"event"`` — the event-driven kernel; supports fleets with
      *mixed* sampling periods (disturbance arrivals, per-application
      ticks and transmissions are queue events);
    * ``"legacy"`` — the original fixed-step polling loop, which
      requires all applications to share one sampling period (the
      paper's case study uses ``h = 20 ms`` throughout).
      ``legacy=True`` remains as a backward-compatible alias.

    Disturbances are applied at the owning application's first sampling
    instant at or after their arrival time in every kernel, and traces
    are bitwise identical across all kernels that accept a given fleet.
    After :meth:`run`, :attr:`last_kernel` names the kernel that
    actually executed (``"batch"``/``"event"``/``"legacy"``).
    """

    def __init__(
        self,
        applications: Sequence[CoSimApplication],
        network: NetworkModel,
        period: Optional[float] = None,
        equalize_delays: bool = True,
        tt_allowed: bool = True,
        legacy: bool = False,
        kernel: Optional[str] = None,
    ):
        if not applications:
            raise ValueError("need at least one application")
        if legacy:
            if kernel not in (None, "legacy"):
                raise ValueError(
                    f"legacy=True conflicts with kernel={kernel!r}; "
                    "pass one or the other"
                )
            kernel = "legacy"
        elif kernel is None:
            kernel = "auto"
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {list(KERNELS)}"
            )
        names = [a.name for a in applications]
        if len(set(names)) != len(names):
            raise ValueError(f"application names must be unique, got {names}")
        periods = {round(a.app.period, 12) for a in applications}
        if kernel == "legacy" and len(periods) != 1:
            raise ValueError(
                "the legacy fixed-step kernel requires one shared sampling "
                f"period, got {sorted(periods)}; use the event kernel "
                "(kernel='event') for multi-rate fleets"
            )
        if period is not None:
            if len(periods) != 1:
                raise ValueError(
                    "an explicit period override would resample a multi-rate "
                    f"fleet (native periods {sorted(periods)}) with controllers "
                    "designed for other rates; omit period= to run each "
                    "application at its own"
                )
            check_positive(period, "period")
            self.period: Optional[float] = period
        elif len(periods) == 1:
            self.period = applications[0].app.period
        else:
            self.period = None  # multi-rate: each application keeps its own
        self.kernel = kernel
        self.legacy = kernel == "legacy"
        self.last_kernel: Optional[str] = None
        self.applications = list(applications)
        self.network = network
        self.equalize_delays = equalize_delays
        self.jitter_violations = 0
        self.arbiter = TTSlotArbiter()
        self.runtimes: Dict[str, SwitchingRuntime] = {}
        for app in self.applications:
            check_positive(app.app.period, f"period of {app.name!r}")
            runtime = SwitchingRuntime(
                name=app.name,
                threshold=app.app.threshold,
                arbiter=self.arbiter,
                deadline=app.deadline,
                tt_allowed=tt_allowed,
            )
            self.arbiter.register(runtime.client(), app.slot)
            self.runtimes[app.name] = runtime

    def period_of(self, app: CoSimApplication) -> float:
        """Effective sampling period of one application."""
        return self.period if self.period is not None else app.app.period

    def run(self, horizon: float) -> SimulationTrace:
        """Simulate up to ``horizon`` seconds and return the trace."""
        check_positive(horizon, "horizon")
        kernel = self.kernel
        capability = None
        if kernel in ("auto", "batch"):
            # Imported lazily: repro.sim.batch imports from this module.
            from repro.sim.batch import batch_capability

            capability = batch_capability(self)
            kernel = "batch" if capability else "event"
        self.last_kernel = kernel
        if kernel == "legacy":
            return self._run_legacy(horizon)
        if kernel == "batch":
            if capability == "flexray":
                from repro.sim.batch_flexray import _FlexRayBatchKernel

                return _FlexRayBatchKernel(self, horizon).run()
            from repro.sim.batch import _BatchKernel

            return _BatchKernel(self, horizon).run()
        return _EventKernel(self, horizon).run()

    def _run_legacy(self, horizon: float) -> SimulationTrace:
        """The original fixed-step polling loop (shared period only)."""
        period = self.period
        steps = int(np.ceil(horizon / period))
        bank = PlantStepperBank()
        for a in self.applications:
            bank.register(a.name, a.dynamics, period)
        states = {
            a.name: np.zeros(a.dynamics.n_states) for a in self.applications
        }
        held_inputs = {
            a.name: np.zeros(a.app.et.plant.n_inputs) for a in self.applications
        }
        pending_events = {
            a.name: deque(a.disturbances.events_until(horizon))
            for a in self.applications
        }
        traces = SimulationTrace(horizon=horizon)
        for app in self.applications:
            traces.add(
                AppTrace(
                    name=app.name,
                    threshold=app.app.threshold,
                    deadline=app.deadline,
                )
            )
        slot_owner: Dict[int, Optional[str]] = {a.slot: None for a in self.applications}

        for k in range(steps):
            time = k * period
            # 1. Apply disturbances due at this instant.
            for app in self.applications:
                events = pending_events[app.name]
                while events and events[0].time <= time + 1e-12:
                    event = events.popleft()
                    states[app.name] = (
                        states[app.name] + event.magnitude * app.disturbance_state
                    )
                    self.runtimes[app.name].on_disturbance(time)
            # 2. Grant freed slots, then advance every state machine.
            self.arbiter.grant_pending()
            comm_states: Dict[str, CommState] = {}
            for app in self.applications:
                norm = float(np.linalg.norm(states[app.name]))
                comm_states[app.name] = self.runtimes[app.name].update(time, norm)
            # A release in update() may leave a slot claimable this sample.
            granted = self.arbiter.grant_pending()
            for name in granted:
                runtime = self.runtimes[name]
                if runtime.state is CommState.WAITING:
                    comm_states[name] = runtime.update(
                        time, float(np.linalg.norm(states[name]))
                    )
            # 3. Propagate slot-ownership changes to the network.
            for app in self.applications:
                holder = self.arbiter.holder_of_slot(app.slot)
                if slot_owner[app.slot] != holder:
                    spec = None
                    if holder is not None:
                        spec = next(
                            a.frame for a in self.applications if a.name == holder
                        )
                    self.network.on_slot_change(app.slot, spec)
                    slot_owner[app.slot] = holder
            # 4. Compute control inputs and submit messages.
            submissions: List[Submission] = []
            inputs: Dict[str, np.ndarray] = {}
            for app in self.applications:
                uses_tt = comm_states[app.name] is CommState.TT_HOLDING
                controller = app.app.tt if uses_tt else app.app.et
                u = controller.control(states[app.name], held_inputs[app.name])
                inputs[app.name] = u
                submissions.append(
                    Submission(
                        name=app.name,
                        spec=app.frame,
                        uses_tt=uses_tt,
                        slot=app.slot if uses_tt else None,
                        release_time=time,
                    )
                )
            delays = self.network.sample_delays(time, period, submissions)
            if self.equalize_delays:
                # Buffer actuation until the design-time offset of the
                # active mode: the controllers were designed for a fixed
                # sensor-to-actuator delay, and actuating early (the bus
                # is usually faster than the worst case) de-tunes the
                # loop.  This jitter-buffering is standard practice in
                # networked control; messages slower than the design
                # offset keep their true delay and are counted as jitter
                # violations.
                for app in self.applications:
                    if not np.isfinite(delays[app.name]):
                        continue  # lost frame: nothing to equalize
                    uses_tt = comm_states[app.name] is CommState.TT_HOLDING
                    design = (app.app.tt if uses_tt else app.app.et).plant.delay
                    if delays[app.name] <= design + 1e-12:
                        delays[app.name] = design
                    else:
                        self.jitter_violations += 1
            # 5. Step plants with the experienced delays; record traces.
            requests: Dict[str, Tuple[np.ndarray, np.ndarray, float]] = {}
            lost_names = set()
            for app in self.applications:
                name = app.name
                delay = delays[name]
                lost = not np.isfinite(delay)
                if lost:
                    # The command never reached the actuator: the previous
                    # input holds for the whole period and stays latched.
                    delay = period
                    lost_names.add(name)
                norm = float(np.linalg.norm(states[name]))
                traces[name].append(time, norm, comm_states[name], delay)
                requests[name] = (inputs[name], held_inputs[name], delay)
            bank.step_all(states, requests)
            for app in self.applications:
                if app.name not in lost_names:
                    held_inputs[app.name] = np.asarray(inputs[app.name], dtype=float)
        # Final norm sample at the horizon for settling checks.
        for app in self.applications:
            name = app.name
            traces[name].append(
                steps * period,
                float(np.linalg.norm(states[name])),
                self.runtimes[name].state,
                0.0,
            )
            traces[name].response_times = self.runtimes[name].response_times()
        return traces


__all__ = [
    "AnalyticNetwork",
    "CoSimApplication",
    "CoSimulator",
    "Delivery",
    "FlexRayNetwork",
    "KERNELS",
    "NetworkModel",
    "Submission",
]
