"""Multi-application closed-loop co-simulation (TrueTime substitute).

Simulates several control applications sharing a FlexRay bus under the
paper's dynamic resource allocation: plants evolve in discrete time with
the sensor-to-actuator delay *actually experienced* on the bus each
sample, the threshold-switching runtimes request/release shared TT slots
through the non-preemptive deadline-priority arbiter, and everything is
recorded in :class:`~repro.sim.trace.SimulationTrace` (the data behind
the paper's Figure 5).

Two network models are provided:

* :class:`AnalyticNetwork` — constant mode delays (TT: the configured
  slot latency; ET: the worst-case bound).  Deterministic; this is the
  model under which the controllers were designed.
* :class:`FlexRayNetwork` — a cycle-accurate
  :class:`~repro.flexray.bus.FlexRayBus`; ET delays vary with dynamic-
  segment contention and TT delays follow the owned slot's window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.control.controller import SwitchedApplication
from repro.control.discretization import zoh_integrals
from repro.control.disturbance import DisturbanceProcess
from repro.control.lti import ContinuousStateSpace
from repro.flexray.bus import FlexRayBus
from repro.flexray.frame import FrameSpec, Message
from repro.sim.arbiter import TTSlotArbiter
from repro.sim.traffic import BackgroundTraffic
from repro.sim.runtime import CommState, SwitchingRuntime
from repro.sim.trace import AppTrace, SimulationTrace
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Submission:
    """One control message ready for the bus at a sampling instant."""

    name: str
    spec: FrameSpec
    uses_tt: bool
    slot: Optional[int]
    release_time: float


class NetworkModel(Protocol):
    """Delay provider for one sampling interval."""

    def sample_delays(
        self, time: float, period: float, submissions: Sequence[Submission]
    ) -> Dict[str, float]:
        """Sensor-to-actuator delay for each submission, keyed by name."""
        ...  # pragma: no cover

    def on_slot_change(
        self, slot: int, spec: Optional[FrameSpec]
    ) -> None:  # pragma: no cover
        """Told whenever TT-slot ownership changes (spec None = released)."""
        ...


@dataclass
class AnalyticNetwork:
    """Constant worst-case delays (the design-time model)."""

    tt_delay: float = 0.0007
    et_delay: float = 0.020

    def sample_delays(self, time, period, submissions):
        delays = {}
        for sub in submissions:
            delays[sub.name] = min(self.tt_delay if sub.uses_tt else self.et_delay, period)
        return delays

    def on_slot_change(self, slot, spec):
        pass  # ownership is irrelevant for constant delays


@dataclass
class FlexRayNetwork:
    """Delays from a cycle-accurate FlexRay bus simulation.

    Messages that fail to arrive within one sampling period are clamped
    to ``period`` (the actuator holds the previous input for the whole
    interval) and counted in :attr:`clamped`.  Optional background
    traffic (see :mod:`repro.sim.traffic`) contends for the dynamic
    segment alongside the control messages.
    """

    bus: FlexRayBus
    traffic: Optional["BackgroundTraffic"] = None
    loss_rate: float = 0.0
    loss_seed: int = 0
    clamped: int = 0
    lost: int = 0
    _inflight: Dict[int, str] = field(default_factory=dict)
    _rng: Optional[np.random.Generator] = field(init=False, default=None)

    def __post_init__(self):
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must lie in [0, 1), got {self.loss_rate}")
        if self.loss_rate > 0.0:
            self._rng = np.random.default_rng(self.loss_seed)

    def sample_delays(self, time, period, submissions):
        if self.traffic is not None:
            for message in self.traffic.messages_between(time, time + period):
                self.bus.submit_et(message)
        for sub in submissions:
            message = Message(spec=sub.spec, release_time=sub.release_time)
            self._inflight[message.sequence] = sub.name
            if sub.uses_tt:
                self.bus.submit_tt(message)
            else:
                self.bus.submit_et(message)
        delivered = self.bus.advance_to(time + period)
        delays: Dict[str, float] = {}
        for message in delivered:
            name = self._inflight.pop(message.sequence, None)
            if name is None:
                continue  # stale message from an earlier interval
            if self._rng is not None and self._rng.random() < self.loss_rate:
                # Failure injection: the frame was corrupted on the wire.
                # Report an infinite delay; the co-simulator holds the
                # previous input for the whole period and never latches
                # the lost command.
                self.lost += 1
                delays[name] = float("inf")
                continue
            if message.release_time >= time - 1e-12:
                delays[name] = min(message.delivery_time - time, period)
        for sub in submissions:
            if sub.name not in delays:
                delays[sub.name] = period
                self.clamped += 1
        return delays

    def on_slot_change(self, slot, spec):
        if spec is None:
            self.bus.release_slot(slot)
        else:
            self.bus.release_slot(slot)
            self.bus.grant_slot(slot, spec)


@dataclass(frozen=True)
class CoSimApplication:
    """Everything the co-simulator needs to run one application.

    Attributes
    ----------
    app:
        Designed switched application (both mode controllers).
    dynamics:
        Continuous plant dynamics (for per-delay discretisation).
    disturbance_state:
        Plant-state jump applied when a disturbance arrives.
    disturbances:
        Arrival process of disturbances.
    deadline:
        Response-time requirement.
    slot:
        Index of the TT slot this application contends for.
    frame:
        Bus frame of this application's control messages.
    """

    app: SwitchedApplication
    dynamics: ContinuousStateSpace
    disturbance_state: np.ndarray
    disturbances: DisturbanceProcess
    deadline: float
    slot: int
    frame: FrameSpec

    @property
    def name(self) -> str:
        return self.app.name


class _DelayedStepper:
    """Caches exact discretisations ``(Phi, Gamma0(d), Gamma1(d))``."""

    def __init__(self, dynamics: ContinuousStateSpace, period: float):
        self._dynamics = dynamics
        self._period = period
        self._phi, self._gamma_full = zoh_integrals(dynamics.a, dynamics.b, period)
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def step(self, x: np.ndarray, u: np.ndarray, u_prev: np.ndarray, delay: float) -> np.ndarray:
        gamma0, gamma1 = self._gammas(delay)
        return self._phi @ x + gamma0 @ u + gamma1 @ u_prev

    def _gammas(self, delay: float) -> Tuple[np.ndarray, np.ndarray]:
        key = int(round(delay * 1e7))  # 0.1 us grid
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        delay = min(max(delay, 0.0), self._period)
        if delay <= 0.0:
            pair = (self._gamma_full, np.zeros_like(self._gamma_full))
        elif delay >= self._period:
            pair = (np.zeros_like(self._gamma_full), self._gamma_full)
        else:
            exp_trail, gamma0 = zoh_integrals(
                self._dynamics.a, self._dynamics.b, self._period - delay
            )
            _, gamma_lead = zoh_integrals(self._dynamics.a, self._dynamics.b, delay)
            pair = (gamma0, exp_trail @ gamma_lead)
        self._cache[key] = pair
        return pair


class CoSimulator:
    """Fixed-step co-simulation of applications sharing TT slots.

    All applications must share the same sampling period (the paper's
    case study uses ``h = 20 ms`` throughout); disturbances are applied
    at the first sampling instant at or after their arrival time.
    """

    def __init__(
        self,
        applications: Sequence[CoSimApplication],
        network: NetworkModel,
        period: Optional[float] = None,
        equalize_delays: bool = True,
        tt_allowed: bool = True,
    ):
        if not applications:
            raise ValueError("need at least one application")
        names = [a.name for a in applications]
        if len(set(names)) != len(names):
            raise ValueError(f"application names must be unique, got {names}")
        periods = {round(a.app.period, 12) for a in applications}
        if len(periods) != 1:
            raise ValueError(
                f"all applications must share one sampling period, got {periods}"
            )
        self.period = period if period is not None else applications[0].app.period
        check_positive(self.period, "period")
        self.applications = list(applications)
        self.network = network
        self.equalize_delays = equalize_delays
        self.jitter_violations = 0
        self.arbiter = TTSlotArbiter()
        self.runtimes: Dict[str, SwitchingRuntime] = {}
        for app in self.applications:
            runtime = SwitchingRuntime(
                name=app.name,
                threshold=app.app.threshold,
                arbiter=self.arbiter,
                deadline=app.deadline,
                tt_allowed=tt_allowed,
            )
            self.arbiter.register(runtime.client(), app.slot)
            self.runtimes[app.name] = runtime

    def run(self, horizon: float) -> SimulationTrace:
        """Simulate up to ``horizon`` seconds and return the trace."""
        check_positive(horizon, "horizon")
        steps = int(np.ceil(horizon / self.period))
        steppers = {
            a.name: _DelayedStepper(a.dynamics, self.period) for a in self.applications
        }
        states = {
            a.name: np.zeros(a.dynamics.n_states) for a in self.applications
        }
        held_inputs = {
            a.name: np.zeros(a.app.et.plant.n_inputs) for a in self.applications
        }
        pending_events = {
            a.name: list(a.disturbances.events_until(horizon))
            for a in self.applications
        }
        traces = SimulationTrace(horizon=horizon)
        for app in self.applications:
            traces.add(
                AppTrace(
                    name=app.name,
                    threshold=app.app.threshold,
                    deadline=app.deadline,
                )
            )
        slot_owner: Dict[int, Optional[str]] = {a.slot: None for a in self.applications}

        for k in range(steps):
            time = k * self.period
            # 1. Apply disturbances due at this instant.
            for app in self.applications:
                events = pending_events[app.name]
                while events and events[0].time <= time + 1e-12:
                    event = events.pop(0)
                    states[app.name] = (
                        states[app.name] + event.magnitude * app.disturbance_state
                    )
                    self.runtimes[app.name].on_disturbance(time)
            # 2. Grant freed slots, then advance every state machine.
            self.arbiter.grant_pending()
            comm_states: Dict[str, CommState] = {}
            for app in self.applications:
                norm = float(np.linalg.norm(states[app.name]))
                comm_states[app.name] = self.runtimes[app.name].update(time, norm)
            # A release in update() may leave a slot claimable this sample.
            granted = self.arbiter.grant_pending()
            for name in granted:
                runtime = self.runtimes[name]
                if runtime.state is CommState.WAITING:
                    comm_states[name] = runtime.update(
                        time, float(np.linalg.norm(states[name]))
                    )
            # 3. Propagate slot-ownership changes to the network.
            for app in self.applications:
                holder = self.arbiter.holder_of_slot(app.slot)
                if slot_owner[app.slot] != holder:
                    spec = None
                    if holder is not None:
                        spec = next(
                            a.frame for a in self.applications if a.name == holder
                        )
                    self.network.on_slot_change(app.slot, spec)
                    slot_owner[app.slot] = holder
            # 4. Compute control inputs and submit messages.
            submissions: List[Submission] = []
            inputs: Dict[str, np.ndarray] = {}
            for app in self.applications:
                uses_tt = comm_states[app.name] is CommState.TT_HOLDING
                controller = app.app.tt if uses_tt else app.app.et
                u = controller.control(states[app.name], held_inputs[app.name])
                inputs[app.name] = u
                submissions.append(
                    Submission(
                        name=app.name,
                        spec=app.frame,
                        uses_tt=uses_tt,
                        slot=app.slot if uses_tt else None,
                        release_time=time,
                    )
                )
            delays = self.network.sample_delays(time, self.period, submissions)
            if self.equalize_delays:
                # Buffer actuation until the design-time offset of the
                # active mode: the controllers were designed for a fixed
                # sensor-to-actuator delay, and actuating early (the bus
                # is usually faster than the worst case) de-tunes the
                # loop.  This jitter-buffering is standard practice in
                # networked control; messages slower than the design
                # offset keep their true delay and are counted as jitter
                # violations.
                for app in self.applications:
                    if not np.isfinite(delays[app.name]):
                        continue  # lost frame: nothing to equalize
                    uses_tt = comm_states[app.name] is CommState.TT_HOLDING
                    design = (app.app.tt if uses_tt else app.app.et).plant.delay
                    if delays[app.name] <= design + 1e-12:
                        delays[app.name] = design
                    else:
                        self.jitter_violations += 1
            # 5. Step plants with the experienced delays; record traces.
            for app in self.applications:
                name = app.name
                delay = delays[name]
                lost = not np.isfinite(delay)
                if lost:
                    # The command never reached the actuator: the previous
                    # input holds for the whole period and stays latched.
                    delay = self.period
                norm = float(np.linalg.norm(states[name]))
                traces[name].append(time, norm, comm_states[name], delay)
                states[name] = steppers[name].step(
                    states[name], inputs[name], held_inputs[name], delay
                )
                if not lost:
                    held_inputs[name] = np.asarray(inputs[name], dtype=float)
        # Final norm sample at the horizon for settling checks.
        for app in self.applications:
            name = app.name
            traces[name].append(
                steps * self.period,
                float(np.linalg.norm(states[name])),
                self.runtimes[name].state,
                0.0,
            )
            traces[name].response_times = self.runtimes[name].response_times()
        return traces


__all__ = [
    "AnalyticNetwork",
    "CoSimApplication",
    "CoSimulator",
    "FlexRayNetwork",
    "NetworkModel",
    "Submission",
]
