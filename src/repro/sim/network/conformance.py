"""Executable conformance kit for the network-backend contract.

``check_network_model(factory)`` instantiates a backend (twice — the
factory must build *fresh, independently seeded* instances) and drives
it through a synthetic submission schedule, asserting the protocol
invariants the co-simulation kernels rely on:

* **surface** — the event interface, lifecycle methods and a coherent
  :class:`~repro.sim.network.protocol.NetworkCapabilities` descriptor
  exist;
* **causality** — no delivery before its submission's release, none
  after the advance barrier (beyond the transport's boundary epsilon);
* **monotone time** — each application's delivery instants never
  decrease across successive ``event_advance`` calls (global order is
  deliberately not required: analytic transports report a message's
  future delivery instant at submission time);
* **seeded determinism** — two fresh instances replay identical
  delivery sequences (loss included);
* **reset idempotence** — after ``reset()`` the instance replays the
  same sequence again, and ``reset(); reset()`` is harmless;
* **statistics consistency** — ``statistics()`` is JSON-safe, its
  counters cover the reported deliveries, and ``reset()`` rewinds them
  along with the delivery state;
* **batch honesty** — an instance claiming the ``"analytic"`` batch
  strategy actually carries the constant-delay attributes the batch
  kernel replays.

Use it from any test suite::

    from repro.sim.network import check_network_model
    check_network_model(lambda: MyBackend(...))

Raises ``ConformanceError`` (an ``AssertionError`` subclass, so plain
pytest reporting works) naming the violated invariant.
"""

from __future__ import annotations

import json
from typing import Any, Callable, List, Sequence, Tuple

from repro.flexray.frame import FrameSpec
from repro.sim.network.protocol import (
    BATCH_STRATEGIES,
    Delivery,
    NetworkCapabilities,
    Submission,
)

#: Barrier spacing of the synthetic schedule (seconds).  Chosen to be
#: one paper bus cycle so slot-table transports deliver within a few
#: barriers of submission.
_PERIOD = 0.005

#: Number of barriers driven per pass.
_BARRIERS = 24


class ConformanceError(AssertionError):
    """A network backend violated the frozen protocol contract."""


def _require(condition: bool, invariant: str, detail: str = "") -> None:
    if not condition:
        message = f"network-backend conformance violated: {invariant}"
        if detail:
            message += f" ({detail})"
        raise ConformanceError(message)


def _schedule(n_apps: int = 3) -> List[Tuple[float, List[Submission]]]:
    """A deterministic multi-frame submission schedule.

    App ``i`` owns frame id ``i + 1`` (slot ``i``) and releases a
    message at every barrier; releases are exact multiples of the
    barrier period, mimicking the kernels' ``k * period`` grids.
    """
    specs = [
        FrameSpec(frame_id=i + 1, payload_bits=64, sender=f"conf-{i}")
        for i in range(n_apps)
    ]
    schedule = []
    for k in range(_BARRIERS):
        time = k * _PERIOD
        submissions = [
            Submission(
                name=spec.sender,
                spec=spec,
                uses_tt=(i % 2 == 0),
                slot=i,
                release_time=time,
            )
            for i, spec in enumerate(specs)
        ]
        schedule.append((time, submissions))
    return schedule


def _grant_slots(network: Any, n_apps: int = 3) -> None:
    """Announce slot ownership for TT-capable transports (no-op hooks
    swallow this on busless backends)."""
    for i in range(n_apps):
        spec = FrameSpec(frame_id=i + 1, payload_bits=64, sender=f"conf-{i}")
        network.on_slot_change(i, spec)


def _drive(network: Any) -> List[Delivery]:
    """Run the synthetic schedule; return all deliveries in order."""
    _grant_slots(network)
    schedule = _schedule()
    deliveries: List[Delivery] = []
    for time, submissions in schedule:
        window_end = time + _PERIOD
        network.event_submit(time, window_end, submissions)
        deliveries.extend(network.event_advance(window_end))
    # Drain: a final long advance flushes anything still on the wire.
    deliveries.extend(network.event_advance(schedule[-1][0] + 10 * _PERIOD))
    return deliveries


def _check_causality(deliveries: Sequence[Delivery]) -> None:
    # Release instants are matched on the integer-nanosecond grid, the
    # same coalescing rule the event kernel uses for its barriers.
    released = {}
    for time, submissions in _schedule():
        for sub in submissions:
            released.setdefault(sub.name, set()).add(round(sub.release_time * 1e9))
    last_per_app: dict = {}
    for delivery in deliveries:
        _require(
            delivery.name in released,
            "deliveries name submitted messages",
            f"unknown delivery {delivery.name!r}",
        )
        _require(
            round(delivery.release_time * 1e9) in released[delivery.name],
            "delivery release_time matches a submission",
            f"{delivery.name!r} at release {delivery.release_time}",
        )
        _require(
            delivery.delivery_time >= delivery.release_time - 1e-12,
            "no delivery before its submission",
            f"{delivery.name!r}: {delivery.delivery_time} < {delivery.release_time}",
        )
        previous = last_per_app.get(delivery.name, float("-inf"))
        _require(
            delivery.delivery_time >= previous - 1e-12,
            "per-application delivery instants are non-decreasing",
            f"{delivery.name!r}: {delivery.delivery_time} after {previous}",
        )
        last_per_app[delivery.name] = max(previous, delivery.delivery_time)


def _check_statistics(network: Any) -> None:
    stats = network.statistics()
    _require(isinstance(stats, dict), "statistics() returns a dict")
    try:
        json.dumps(stats)
    except (TypeError, ValueError) as exc:
        raise ConformanceError(
            f"network-backend conformance violated: statistics() must be "
            f"JSON-safe ({exc})"
        ) from None
    for key, value in stats.items():
        _require(
            isinstance(key, str),
            "statistics() keys are strings",
            repr(key),
        )
        _require(
            isinstance(value, (int, float)),
            "statistics() values are numeric counters",
            f"{key}={value!r}",
        )


def check_network_model(factory: Callable[[], Any]) -> None:
    """Assert the full protocol contract for one backend family.

    ``factory`` must build a **fresh** instance per call (same seed
    each time); the kit builds two for the determinism check.
    """
    network = factory()

    # -- surface ----------------------------------------------------------
    for method in (
        "event_submit",
        "event_advance",
        "sample_delays",
        "on_slot_change",
        "reset",
        "statistics",
        "capabilities",
    ):
        _require(
            callable(getattr(network, method, None)),
            f"backend implements {method}()",
            type(network).__name__,
        )
    caps = network.capabilities()
    _require(
        isinstance(caps, NetworkCapabilities),
        "capabilities() returns a NetworkCapabilities",
        repr(caps),
    )
    _require(
        caps.batch_strategy is None or caps.batch_strategy in BATCH_STRATEGIES,
        "batch_strategy is known to the batch kernel",
        repr(caps.batch_strategy),
    )
    _require(
        caps.event_interface,
        "ABC-conformant backends expose the event interface",
    )
    if caps.batch_strategy == "analytic":
        _require(
            isinstance(getattr(network, "tt_delay", None), float)
            and isinstance(getattr(network, "et_delay", None), float),
            "claiming the analytic batch strategy requires tt_delay/et_delay",
            type(network).__name__,
        )
    json.dumps(caps.to_dict())  # descriptor must serialize (CLI table)

    # -- first pass: causality + statistics -------------------------------
    first = _drive(network)
    _require(bool(first), "the synthetic schedule produces deliveries")
    _check_causality(first)
    _check_statistics(network)
    stats = network.statistics()
    delivered = sum(1 for d in first if not d.lost)
    lost = sum(1 for d in first if d.lost)
    if "lost" in stats:
        _require(
            int(stats["lost"]) == lost,
            "statistics()['lost'] counts lost deliveries",
            f"{stats['lost']} != {lost}",
        )
    if "delivered" in stats:
        _require(
            int(stats["delivered"]) >= delivered,
            "statistics()['delivered'] covers reported deliveries",
            f"{stats['delivered']} < {delivered}",
        )

    # -- seeded determinism -----------------------------------------------
    twin = factory()
    _require(
        twin is not network,
        "factory builds fresh instances",
        type(network).__name__,
    )
    _require(
        _drive(twin) == first,
        "two fresh instances replay identical delivery sequences",
        type(network).__name__,
    )

    # -- reset idempotence ------------------------------------------------
    network.reset()
    network.reset()  # double reset must be harmless
    replay = _drive(network)
    _require(
        replay == first,
        "reset() rewinds to the just-constructed state",
        type(network).__name__,
    )
    _check_statistics(network)
    _require(
        network.statistics() == stats,
        "reset() rewinds the statistics counters",
        f"{network.statistics()} != {stats}",
    )

    # -- capabilities stable across reset ---------------------------------
    network.reset()
    _require(
        network.capabilities() == caps,
        "capabilities() is stable across reset()",
        type(network).__name__,
    )


__all__ = ["ConformanceError", "check_network_model"]
