"""A co-simulable CAN bus backend.

Promotes the static response-time analysis of
:mod:`repro.baselines.can_rta` into a live transport the co-simulation
kernels can drive: non-preemptive fixed-priority arbitration where the
lowest frame identifier wins the bus, one frame on the wire at a time,
wire time charged per frame exactly as the RTA charges ``C`` (the same
:func:`~repro.baselines.can_rta.frame_transmission_time` formula).  The
property tests assert the promotion is sound: every simulated wait is
bounded by the analytic worst case whenever the RTA declares the
message set schedulable.

The model is event-driven and lazy: :meth:`CanBusNetwork.event_submit`
only queues, and :meth:`CanBusNetwork.event_advance` replays
arbitration decisions up to the barrier.  Decisions depend solely on
the pending set (identifier, release instant, submission order), so
the transport is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.baselines.can_rta import (
    CAN_FRAME_OVERHEAD_BITS,
    frame_transmission_time,
)
from repro.sim.network.protocol import (
    Delivery,
    NetworkCapabilities,
    NetworkModel,
    Submission,
)
from repro.sim.network.registry import register_network
from repro.utils.validation import check_positive

#: Pending-queue entry: ``(frame_id, release_time, sequence, name,
#: wire_time)`` — tuple order IS the arbitration order (lowest
#: identifier wins; FIFO per identifier via the sequence number).
_Entry = Tuple[int, float, int, str, float]


@dataclass
class CanBusNetwork(NetworkModel):
    """Priority-arbitrated single-wire CAN bus.

    Attributes
    ----------
    bit_time:
        Seconds per bit; the default 2 microseconds is a 500 kbit/s
        automotive CAN bus.
    overhead_bits:
        Non-payload bits charged per frame (see
        :data:`repro.baselines.can_rta.CAN_FRAME_OVERHEAD_BITS`).
    """

    bit_time: float = 2e-6
    overhead_bits: int = CAN_FRAME_OVERHEAD_BITS
    delivered: int = 0
    clamped: int = 0
    busy_time: float = 0.0
    _pending: List[_Entry] = field(init=False, repr=False, default_factory=list)
    _transmitting: Optional[_Entry] = field(init=False, repr=False, default=None)
    _busy_until: float = field(init=False, repr=False, default=0.0)
    _sequence: int = field(init=False, repr=False, default=0)

    def __post_init__(self):
        check_positive(self.bit_time, "bit_time")
        if self.overhead_bits < 0:
            raise ValueError(f"overhead_bits must be >= 0, got {self.overhead_bits}")

    def wire_time(self, payload_bits: int) -> float:
        """Transmission time of one frame — the RTA's ``C``."""
        return frame_transmission_time(
            payload_bits, self.bit_time, self.overhead_bits
        )

    # -- event interface ---------------------------------------------------

    def event_submit(
        self, time: float, window_end: float, submissions: Sequence[Submission]
    ) -> None:
        for sub in submissions:
            self._pending.append(
                (
                    sub.spec.frame_id,
                    sub.release_time,
                    self._sequence,
                    sub.name,
                    self.wire_time(sub.spec.payload_bits),
                )
            )
            self._sequence += 1

    def event_advance(self, time: float) -> List[Delivery]:
        out: List[Delivery] = []
        while True:
            if self._transmitting is not None:
                frame_id, release, _seq, name, finish = self._transmitting
                if finish > time:
                    break
                # Frame completes within the window: the wire frees at
                # `finish` and the delivery is reported at that instant.
                self._transmitting = None
                self._busy_until = finish
                self.delivered += 1
                out.append(
                    Delivery(
                        name=name, release_time=release, delivery_time=finish
                    )
                )
            if not self._pending:
                break
            earliest = min(entry[1] for entry in self._pending)
            start = max(self._busy_until, earliest)
            if start >= time:
                # The next arbitration instant lies at/after the
                # barrier; deferring it is lossless (the winner is a
                # pure function of the pending set at `start`).
                break
            ready = [entry for entry in self._pending if entry[1] <= start]
            winner = min(ready)
            self._pending.remove(winner)
            frame_id, release, seq, name, wire = winner
            self.busy_time += wire
            self._transmitting = (frame_id, release, seq, name, start + wire)
        return out

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        self._pending = []
        self._transmitting = None
        self._busy_until = 0.0
        self._sequence = 0
        self.delivered = 0
        self.clamped = 0
        self.busy_time = 0.0

    def statistics(self) -> Dict[str, Any]:
        in_flight = int(self._transmitting is not None)
        return {
            "delivered": self.delivered,
            "clamped": self.clamped,
            "pending": len(self._pending) + in_flight,
            "busy_time": self.busy_time,
        }

    def capabilities(self) -> NetworkCapabilities:
        # No batch strategy: arbitration is contention-dependent, so
        # delivery instants cannot be precomputed from the slot table
        # the way the analytic/FlexRay fast paths do.
        return NetworkCapabilities(
            deterministic=True,
            analytic_delays=False,
            batch_strategy=None,
            loss="none",
        )


@register_network(
    "can",
    summary="priority-arbitrated CAN bus (non-preemptive, lowest frame id wins)",
    deterministic=True,
    analytic_delays=False,
    batch=None,
    loss="iid",
)
def _build_can(
    *,
    bus: Any = None,
    loss_rate: float = 0.0,
    seed: int = 0,
    traffic: Any = None,
) -> Any:
    """Factory: ``bus`` must be ``None`` (the CAN model has no FlexRay
    geometry to consume); a nonzero ``loss_rate`` wraps the bus in a
    seeded i.i.d. loss process."""
    if traffic is not None:
        raise ValueError(
            "the CAN backend does not take BackgroundTraffic; add "
            "contending frames as applications instead"
        )
    if bus is not None:
        raise ValueError(
            "the CAN backend has no FlexRay bus geometry; leave the "
            "scenario's `bus` unset for network='can'"
        )
    network: Any = CanBusNetwork()
    if loss_rate:
        from repro.sim.network.loss import IIDLoss, LossyNetwork

        network = LossyNetwork(inner=network, loss=IIDLoss(rate=loss_rate, seed=seed))
    return network


__all__ = ["CanBusNetwork"]
