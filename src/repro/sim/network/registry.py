"""Decorator registry of co-simulable network backends.

Mirrors :mod:`repro.solvers.registry`: backends register a *factory*
under a short name together with capability metadata, and everything
downstream — ``Scenario.network`` validation, the pipeline's
``stage_cosim``, the ``repro networks`` CLI table, QA004's literal
resolution, and the CI conformance job — resolves backends through
this module instead of hardcoding classes.

Registering a third-party backend::

    from repro.sim.network import register_network

    @register_network(
        "tsn",
        summary="802.1Qbv time-aware shaper",
        deterministic=True,
    )
    def build_tsn(*, bus=None, loss_rate=0.0, seed=0, traffic=None):
        return TsnNetwork(...)

The factory contract is keyword-only: ``bus`` (a scenario-level bus
configuration or ``None`` for the backend's default), ``loss_rate`` /
``seed`` (loss process), and ``traffic`` (optional background-traffic
generator).  Factories must raise ``ValueError`` for combinations they
do not support rather than silently ignoring them — except ``analytic``
which historically ignores loss and traffic (documented below).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class UnknownNetworkError(KeyError):
    """Raised when a network-backend name is not in the registry."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class NetworkSpec:
    """Registry entry: factory plus static capability metadata.

    The static metadata describes the *family* (what the CLI table and
    docs show); the authoritative per-instance answer is always the
    built model's ``capabilities()`` descriptor, which may be narrower
    (a lossy FlexRay instance loses its batch strategy, for example).
    """

    name: str
    factory: Callable[..., Any] = field(repr=False)
    summary: str = ""
    deterministic: bool = True
    analytic_delays: bool = False
    batch: Optional[str] = None
    loss: str = "none"

    def build(self, **kwargs: Any) -> Any:
        return self.factory(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "summary": self.summary,
            "deterministic": self.deterministic,
            "analytic_delays": self.analytic_delays,
            "batch": self.batch,
            "loss": self.loss,
        }


_NETWORK_REGISTRY: Dict[str, NetworkSpec] = {}


def register_network(
    name: str,
    *,
    summary: str = "",
    deterministic: bool = True,
    analytic_delays: bool = False,
    batch: Optional[str] = None,
    loss: str = "none",
    overwrite: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class decorator/registration hook for network-backend factories."""

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        if name in _NETWORK_REGISTRY and not overwrite:
            raise ValueError(
                f"network backend {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _NETWORK_REGISTRY[name] = NetworkSpec(
            name=name,
            factory=factory,
            summary=summary,
            deterministic=deterministic,
            analytic_delays=analytic_delays,
            batch=batch,
            loss=loss,
        )
        return factory

    return decorator


def unregister_network(name: str) -> None:
    """Remove a backend (primarily for test isolation)."""
    _NETWORK_REGISTRY.pop(name, None)


def get_network(name: str) -> NetworkSpec:
    """Look up a backend spec by name, or raise :class:`UnknownNetworkError`."""
    try:
        return _NETWORK_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_NETWORK_REGISTRY)) or "<none>"
        raise UnknownNetworkError(
            f"unknown network backend {name!r}; registered: {known}"
        ) from None


def build_network(name: str, **kwargs: Any) -> Any:
    """Build a backend instance by registry name.

    Keyword arguments follow the factory contract (``bus``,
    ``loss_rate``, ``seed``, ``traffic``); only pass what you mean —
    factories reject unsupported combinations.
    """
    return get_network(name).build(**kwargs)


def network_names() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_NETWORK_REGISTRY)


def networks() -> List[NetworkSpec]:
    """All registered specs, sorted by name."""
    return [_NETWORK_REGISTRY[name] for name in network_names()]


def network_table() -> List[Dict[str, Any]]:
    """JSON-safe rows for the ``repro networks`` CLI table."""
    return [spec.to_dict() for spec in networks()]


__all__ = [
    "NetworkSpec",
    "UnknownNetworkError",
    "build_network",
    "get_network",
    "network_names",
    "network_table",
    "networks",
    "register_network",
    "unregister_network",
]
