"""The constant-delay analytic network backend.

Re-homed from ``repro.sim.cosim`` (which still re-exports it): the
design-time model under which the paper's controllers were derived —
TT messages arrive after the configured slot latency, ET messages
after the worst-case bound, independent of bus state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.sim.network.protocol import (
    Delivery,
    NetworkCapabilities,
    NetworkModel,
    Submission,
)
from repro.sim.network.registry import register_network


@dataclass
class AnalyticNetwork(NetworkModel):
    """Constant worst-case delays (the design-time model)."""

    tt_delay: float = 0.0007
    et_delay: float = 0.020
    delivered: int = 0
    _pending: List[Submission] = field(
        init=False, repr=False, default_factory=list
    )

    def sample_delays(self, time, period, submissions):
        delays = {}
        for sub in submissions:
            delays[sub.name] = min(self.tt_delay if sub.uses_tt else self.et_delay, period)
        self.delivered += len(submissions)
        return delays

    def on_slot_change(self, slot, spec):
        pass  # ownership is irrelevant for constant delays

    # -- event interface (multi-rate kernels) -----------------------------

    def event_submit(self, time, window_end, submissions):
        self._pending.extend(submissions)

    def event_advance(self, time):
        out = [
            Delivery(
                name=sub.name,
                release_time=sub.release_time,
                delivery_time=sub.release_time
                + (self.tt_delay if sub.uses_tt else self.et_delay),
            )
            for sub in self._pending
        ]
        self._pending = []
        self.delivered += len(out)
        return out

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        self._pending = []
        self.delivered = 0

    def statistics(self) -> Dict[str, Any]:
        return {"delivered": self.delivered, "pending": len(self._pending)}

    def capabilities(self) -> NetworkCapabilities:
        # Subclasses do NOT inherit the batch opt-in: the batch kernel
        # replays exactly this class's delay arithmetic, so an override
        # anywhere would silently be ignored.  Subclasses that keep the
        # semantics may override capabilities() to opt back in.
        batch = "analytic" if type(self) is AnalyticNetwork else None
        return NetworkCapabilities(
            deterministic=True,
            analytic_delays=True,
            batch_strategy=batch,
            loss="none",
        )


@register_network(
    "analytic",
    summary="constant design-time delays (TT slot latency / ET worst case)",
    deterministic=True,
    analytic_delays=True,
    batch="analytic",
    loss="none",
)
def _build_analytic(
    *,
    bus: Any = None,
    loss_rate: float = 0.0,
    seed: int = 0,
    traffic: Any = None,
) -> AnalyticNetwork:
    """Factory: the analytic model has no bus and — historically —
    ignores ``loss_rate``/``seed``/``traffic`` (analytic scenarios have
    always simulated the loss-free design-time abstraction even when a
    sweep ranges a ``loss_rate`` axis over them)."""
    del bus, loss_rate, seed, traffic
    return AnalyticNetwork()


__all__ = ["AnalyticNetwork"]
