"""Pluggable network backends for the co-simulator.

The frozen contract lives in :mod:`repro.sim.network.protocol`
(:class:`NetworkModel` + :class:`NetworkCapabilities`), the decorator
registry in :mod:`repro.sim.network.registry`, and the executable
contract in :mod:`repro.sim.network.conformance`.  Importing this
package registers the bundled backends:

========== ============================================================
name       model
========== ============================================================
analytic   constant design-time delays (batch fast path)
flexray    cycle-accurate FlexRay bus (batch fast path when loss-free)
can        priority-arbitrated non-preemptive CAN bus
========== ============================================================

plus the composable loss layer (:class:`IIDLoss`,
:class:`GilbertElliottLoss`, :class:`LossyNetwork`).
"""

from repro.sim.network.protocol import (
    BATCH_STRATEGIES,
    LOSS_KINDS,
    Delivery,
    NetworkCapabilities,
    NetworkModel,
    Submission,
)
from repro.sim.network.registry import (
    NetworkSpec,
    UnknownNetworkError,
    build_network,
    get_network,
    network_names,
    network_table,
    networks,
    register_network,
    unregister_network,
)
from repro.sim.network.loss import (
    GilbertElliottLoss,
    IIDLoss,
    LossProcess,
    LossyNetwork,
)

# Importing the backend modules runs their @register_network hooks.
from repro.sim.network.analytic import AnalyticNetwork
from repro.sim.network.can import CanBusNetwork
from repro.sim.network.flexray import FlexRayNetwork
from repro.sim.network.conformance import ConformanceError, check_network_model

__all__ = [
    "AnalyticNetwork",
    "BATCH_STRATEGIES",
    "CanBusNetwork",
    "ConformanceError",
    "Delivery",
    "FlexRayNetwork",
    "GilbertElliottLoss",
    "IIDLoss",
    "LOSS_KINDS",
    "LossProcess",
    "LossyNetwork",
    "NetworkCapabilities",
    "NetworkModel",
    "NetworkSpec",
    "Submission",
    "UnknownNetworkError",
    "build_network",
    "check_network_model",
    "get_network",
    "network_names",
    "network_table",
    "networks",
    "register_network",
    "unregister_network",
]
