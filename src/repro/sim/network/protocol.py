"""The frozen network-backend contract of the co-simulator.

Every network model the co-simulation kernels can drive — bundled or
third-party — implements this protocol.  It formalizes what used to be
an undocumented duck-type shared by exactly two classes:

* the **event interface**: :meth:`NetworkModel.event_submit` queues the
  control messages released at a barrier (plus anything the backend
  wants to inject for the window, e.g. background traffic), and
  :meth:`NetworkModel.event_advance` runs the transport up to a barrier
  and reports every :class:`Delivery`.  The event kernel resolves
  multi-rate fleets exclusively through this pair.
* the **batch interface**: :meth:`NetworkModel.sample_delays` answers
  one whole sampling interval in a single call.  The legacy fixed-step
  kernel and the event kernel's shared-period fast path use it; a
  default implementation built on the event interface is provided, so
  backends only override it when they need a bespoke (or historically
  bitwise-pinned) formulation.
* **lifecycle**: :meth:`NetworkModel.reset` returns the backend to its
  just-constructed state (idempotent), :meth:`NetworkModel.statistics`
  reports JSON-safe counters, and :meth:`NetworkModel.capabilities`
  describes what the backend can do — most importantly which batch
  precomputation strategy (if any) it opts into, which replaces the
  old hardwired ``isinstance`` checks in
  :func:`repro.sim.batch.batch_capability`.

The kernels themselves stay duck-typed (they never ``isinstance`` a
network against this ABC), so pre-existing third-party models keep
running; the ABC is the documented way to build a new backend, and
:func:`repro.sim.network.conformance.check_network_model` is the
executable version of this contract.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.flexray.frame import FrameSpec

#: Batch precomputation strategies the co-simulator's fast path knows
#: how to run (see :func:`repro.sim.batch.batch_capability`).  A
#: backend's :meth:`NetworkModel.capabilities` may name one of these to
#: opt in; anything else runs on the event kernel.
BATCH_STRATEGIES = ("analytic", "flexray")

#: Loss-model identifiers used in capability descriptors (extensible:
#: custom :class:`~repro.sim.network.loss.LossProcess` subclasses may
#: report their own ``kind``).
LOSS_KINDS = ("none", "iid", "gilbert-elliott")


@dataclass(frozen=True)
class Submission:
    """One control message ready for the bus at a sampling instant."""

    name: str
    spec: FrameSpec
    uses_tt: bool
    slot: Optional[int]
    release_time: float


@dataclass(frozen=True)
class Delivery:
    """One message's fate, reported through the event interface."""

    name: str
    release_time: float
    delivery_time: float
    lost: bool = False


@dataclass(frozen=True)
class NetworkCapabilities:
    """What one network-backend *instance* can do, for the kernels.

    Attributes
    ----------
    deterministic:
        Delivery instants are a pure function of the submissions — no
        randomness at all.  Seeded loss makes a backend reproducible
        but not deterministic in this sense.
    analytic_delays:
        Delays are state-independent per-mode constants (the design-
        time model); nothing on the wire depends on contention.
    batch_strategy:
        Which batch-kernel precomputation strategy covers this
        instance, or ``None`` to run on the event kernel.  Must be a
        member of :data:`BATCH_STRATEGIES`; claiming ``"analytic"``
        requires ``tt_delay``/``et_delay`` constant-delay attributes
        with :class:`~repro.sim.network.analytic.AnalyticNetwork`
        semantics, claiming ``"flexray"`` requires the stock FlexRay
        transport (the strategy replays its slot table arithmetically).
    loss:
        Loss-model identifier (``"none"``, ``"iid"``,
        ``"gilbert-elliott"``, or a custom process's ``kind``).
    event_interface:
        Whether the incremental event interface is implemented (ABC
        subclasses always have it; the flag exists so capability
        descriptors of legacy batch-only duck-types stay expressible).
    """

    deterministic: bool = True
    analytic_delays: bool = False
    batch_strategy: Optional[str] = None
    loss: str = "none"
    event_interface: bool = True

    def __post_init__(self):
        if self.batch_strategy is not None and self.batch_strategy not in BATCH_STRATEGIES:
            raise ValueError(
                f"unknown batch_strategy {self.batch_strategy!r}; "
                f"expected one of {list(BATCH_STRATEGIES)} or None"
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class NetworkModel(abc.ABC):
    """Abstract base of co-simulable network backends.

    Subclasses must implement the event interface
    (:meth:`event_submit`/:meth:`event_advance`) and the lifecycle
    (:meth:`reset`/:meth:`statistics`/:meth:`capabilities`);
    :meth:`sample_delays`, :meth:`on_slot_change` and
    :meth:`event_clamped` have functional defaults.
    """

    # -- transport ---------------------------------------------------------

    @abc.abstractmethod
    def event_submit(
        self, time: float, window_end: float, submissions: Sequence[Submission]
    ) -> None:
        """Queue the messages released at ``time``.

        ``window_end`` is the next barrier instant — backends that
        synthesize their own traffic (background streams) generate it
        for ``[time, window_end)`` here.  The transport must not
        advance; deliveries are reported by :meth:`event_advance`.
        """

    @abc.abstractmethod
    def event_advance(self, time: float) -> List[Delivery]:
        """Run the transport up to ``time``; report every delivery.

        Calls arrive with non-decreasing ``time``.  Per application,
        reported ``delivery_time`` values must be non-decreasing across
        calls and never earlier than the message's ``release_time``.
        State-dependent transports (FlexRay, CAN) report deliveries at
        the first barrier at/after the delivery instant; analytic
        transports may report a *future* delivery instant as soon as it
        is determined.  The kernel matches deliveries against its
        in-flight records, so stale deliveries (messages that missed
        their whole interval) may be reported late without harm.
        """

    def sample_delays(
        self, time: float, period: float, submissions: Sequence[Submission]
    ) -> Dict[str, float]:
        """Sensor-to-actuator delay for one whole sampling interval.

        Default implementation in terms of the event interface: submit,
        advance one period, clamp whatever did not arrive.  Lost frames
        are reported as ``inf`` (the kernel holds the previous input
        for the whole period and never latches the lost command).
        """
        self.event_submit(time, time + period, submissions)
        delays: Dict[str, float] = {}
        for delivery in self.event_advance(time + period):
            if delivery.lost:
                delays[delivery.name] = float("inf")
                continue
            if delivery.release_time >= time - 1e-12:
                delays[delivery.name] = min(delivery.delivery_time - time, period)
        for sub in submissions:
            if sub.name not in delays:
                delays[sub.name] = period
                self.event_clamped()
        return delays

    def on_slot_change(self, slot: int, spec: Optional[FrameSpec]) -> None:
        """Told whenever TT-slot ownership changes (spec None = released).

        Backends without slot semantics (CAN, analytic constants)
        inherit this no-op.
        """

    def event_clamped(self) -> None:
        """A message missed its whole sampling interval (kernel hook)."""
        self.clamped = getattr(self, "clamped", 0) + 1

    # -- lifecycle ---------------------------------------------------------

    @abc.abstractmethod
    def reset(self) -> None:
        """Return to the just-constructed state (idempotent)."""

    @abc.abstractmethod
    def statistics(self) -> Dict[str, Any]:
        """JSON-safe counters accumulated since construction/reset."""

    @abc.abstractmethod
    def capabilities(self) -> NetworkCapabilities:
        """Describe this *instance* (state-dependent where it must be:
        a lossy FlexRay bus reports ``batch_strategy=None`` while the
        same class loss-free reports ``"flexray"``)."""


__all__ = [
    "BATCH_STRATEGIES",
    "Delivery",
    "LOSS_KINDS",
    "NetworkCapabilities",
    "NetworkModel",
    "Submission",
]
