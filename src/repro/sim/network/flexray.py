"""The cycle-accurate FlexRay network backend.

Re-homed from ``repro.sim.cosim`` (which still re-exports it).  The
``loss_rate`` machinery now delegates to
:class:`~repro.sim.network.loss.IIDLoss`, bit-for-bit: the same
``np.random.default_rng(loss_seed)`` stream, one draw per delivered
control message, drawn *before* the staleness check — every historical
trace replays unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.flexray.bus import FlexRayBus
from repro.flexray.frame import Message
from repro.sim.network.loss import IIDLoss
from repro.sim.network.protocol import (
    Delivery,
    NetworkCapabilities,
    NetworkModel,
)
from repro.sim.network.registry import register_network
from repro.sim.traffic import BackgroundTraffic


@dataclass
class FlexRayNetwork(NetworkModel):
    """Delays from a cycle-accurate FlexRay bus simulation.

    Messages that fail to arrive within one sampling period are clamped
    to ``period`` (the actuator holds the previous input for the whole
    interval) and counted in :attr:`clamped`.  Optional background
    traffic (see :mod:`repro.sim.traffic`) contends for the dynamic
    segment alongside the control messages.
    """

    bus: FlexRayBus
    traffic: Optional["BackgroundTraffic"] = None
    loss_rate: float = 0.0
    loss_seed: int = 0
    clamped: int = 0
    lost: int = 0
    _inflight: Dict[int, str] = field(default_factory=dict)
    _loss: Optional[IIDLoss] = field(init=False, default=None, repr=False)

    def __post_init__(self):
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must lie in [0, 1), got {self.loss_rate}")
        if self.loss_rate > 0.0:
            self._loss = IIDLoss(rate=self.loss_rate, seed=self.loss_seed)

    def sample_delays(self, time, period, submissions):
        if self.traffic is not None:
            for message in self.traffic.messages_between(time, time + period):
                self.bus.submit_et(message)
        for sub in submissions:
            message = Message(spec=sub.spec, release_time=sub.release_time)
            self._inflight[message.sequence] = sub.name
            if sub.uses_tt:
                self.bus.submit_tt(message)
            else:
                self.bus.submit_et(message)
        delivered = self.bus.advance_to(time + period)
        delays: Dict[str, float] = {}
        for message in delivered:
            name = self._inflight.pop(message.sequence, None)
            if name is None:
                continue  # stale message from an earlier interval
            if self._loss is not None and self._loss.sample():
                # Failure injection: the frame was corrupted on the wire.
                # Report an infinite delay; the co-simulator holds the
                # previous input for the whole period and never latches
                # the lost command.
                self.lost += 1
                delays[name] = float("inf")
                continue
            if message.release_time >= time - 1e-12:
                delays[name] = min(message.delivery_time - time, period)
        for sub in submissions:
            if sub.name not in delays:
                delays[sub.name] = period
                self.clamped += 1
        return delays

    def on_slot_change(self, slot, spec):
        if spec is None:
            self.bus.release_slot(slot)
        else:
            self.bus.release_slot(slot)
            self.bus.grant_slot(slot, spec)

    # -- event interface (multi-rate kernels) -----------------------------

    def event_submit(self, time, window_end, submissions):
        """Queue background traffic for ``[time, window_end)`` plus the
        control messages released at ``time``; the bus advances later."""
        if self.traffic is not None:
            for message in self.traffic.messages_between(time, window_end):
                self.bus.submit_et(message)
        for sub in submissions:
            message = Message(spec=sub.spec, release_time=sub.release_time)
            self._inflight[message.sequence] = sub.name
            if sub.uses_tt:
                self.bus.submit_tt(message)
            else:
                self.bus.submit_et(message)

    def event_advance(self, time):
        """Run whole bus cycles up to ``time``; report every delivery
        (the kernel matches releases against its in-flight records)."""
        out = []
        for message in self.bus.advance_to(time):
            name = self._inflight.pop(message.sequence, None)
            if name is None:
                continue
            lost = False
            if self._loss is not None and self._loss.sample():
                self.lost += 1
                lost = True
            out.append(
                Delivery(
                    name=name,
                    release_time=message.release_time,
                    delivery_time=message.delivery_time,
                    lost=lost,
                )
            )
        return out

    def event_clamped(self):
        """A message missed its whole sampling interval (kernel hook)."""
        self.clamped += 1

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Fresh bus (same configuration), rewound loss stream."""
        self.bus = FlexRayBus(config=self.bus.config, bit_time=self.bus.bit_time)
        self._inflight = {}
        self.clamped = 0
        self.lost = 0
        if self._loss is not None:
            self._loss.reset()

    def statistics(self) -> Dict[str, Any]:
        stats = self.bus.statistics
        return {
            "cycles": stats.cycles,
            "tt_deliveries": stats.tt_deliveries,
            "et_deliveries": stats.et_deliveries,
            "unused_static_slots": stats.unused_static_slots,
            "clamped": self.clamped,
            "lost": self.lost,
        }

    def capabilities(self) -> NetworkCapabilities:
        # State-dependent by design: the batch strategy replays the
        # static slot table arithmetically, so it only covers pristine
        # loss-free stock-class instances (the same predicate the batch
        # kernel has always enforced).  Subclasses never inherit the
        # opt-in — override capabilities() to claim it deliberately.
        from repro.sim.batch_flexray import flexray_deterministic

        batch = None
        if type(self) is FlexRayNetwork and flexray_deterministic(self):
            batch = "flexray"
        return NetworkCapabilities(
            deterministic=self.loss_rate == 0.0,
            analytic_delays=False,
            batch_strategy=batch,
            loss="iid" if self.loss_rate > 0.0 else "none",
        )


@register_network(
    "flexray",
    summary="cycle-accurate FlexRay bus (TDMA static segment + minislot dynamic segment)",
    deterministic=True,
    analytic_delays=False,
    batch="flexray",
    loss="iid",
)
def _build_flexray(
    *,
    bus: Any = None,
    loss_rate: float = 0.0,
    seed: int = 0,
    traffic: Optional[BackgroundTraffic] = None,
) -> FlexRayNetwork:
    """Factory: ``bus`` is a :class:`~repro.flexray.params.FlexRayConfig`
    (the paper's configuration when ``None``); ``loss_rate``/``seed``
    drive the historical i.i.d. loss stream."""
    if bus is None:
        from repro.flexray.params import paper_bus_config

        bus = paper_bus_config()
    return FlexRayNetwork(
        bus=FlexRayBus(config=bus),
        traffic=traffic,
        loss_rate=loss_rate,
        loss_seed=seed,
    )


__all__ = ["FlexRayNetwork"]
