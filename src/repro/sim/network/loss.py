"""Composable loss processes and the loss-wrapping network adapter.

Loss used to be a single i.i.d. ``loss_rate`` float baked into the
FlexRay backend.  This module factors it into pluggable
:class:`LossProcess` objects — one boolean draw per delivered control
message — so any backend can be wrapped with :class:`LossyNetwork`,
and the FlexRay backend itself delegates its historical ``loss_rate``
semantics to :class:`IIDLoss` (bit-for-bit: same
``np.random.default_rng(seed)`` stream, same one-draw-per-delivery
order, draw *before* the staleness check).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.flexray.frame import FrameSpec
from repro.sim.network.protocol import (
    Delivery,
    NetworkCapabilities,
    NetworkModel,
    Submission,
)


class LossProcess(abc.ABC):
    """One seeded boolean stream: ``sample()`` per delivered message."""

    #: Capability identifier reported by wrapped backends.
    kind: str = "custom"

    @abc.abstractmethod
    def sample(self) -> bool:
        """Draw once: ``True`` means this delivery is lost."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Rewind to the start of the seeded stream."""


@dataclass
class IIDLoss(LossProcess):
    """Independent losses at a fixed rate.

    Replays the legacy FlexRay ``loss_rate`` stream bit-for-bit: one
    ``default_rng(seed).random() < rate`` draw per delivered message.
    With ``rate == 0`` no generator state is consumed (the legacy path
    created no generator at all).
    """

    rate: float
    seed: int = 0

    kind = "iid"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.rate}")
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def sample(self) -> bool:
        if self.rate <= 0.0:
            return False
        return bool(self._rng.random() < self.rate)


@dataclass
class GilbertElliottLoss(LossProcess):
    """Bursty losses from the two-state Gilbert-Elliott channel.

    The channel alternates between a *good* and a *bad* state with the
    given per-message transition probabilities; each delivery first
    advances the state (one draw), then draws its loss against the
    state's loss probability (a second draw).  Defaults give rare,
    short, severe bursts — mean burst length ``1/p_bad_to_good`` = 5
    messages at 50% loss.
    """

    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.2
    p_loss_good: float = 0.0
    p_loss_bad: float = 0.5
    seed: int = 0

    kind = "gilbert-elliott"

    def __post_init__(self) -> None:
        for label in ("p_good_to_bad", "p_bad_to_good", "p_loss_good", "p_loss_bad"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._bad = False

    def sample(self) -> bool:
        transition = float(self._rng.random())
        if self._bad:
            if transition < self.p_bad_to_good:
                self._bad = False
        elif transition < self.p_good_to_bad:
            self._bad = True
        p_loss = self.p_loss_bad if self._bad else self.p_loss_good
        return bool(self._rng.random() < p_loss)


@dataclass
class LossyNetwork(NetworkModel):
    """Wrap any backend with a :class:`LossProcess`.

    Deliveries pass through the inner transport untouched; each
    *delivered* (not already-lost) message costs exactly one
    ``loss.sample()`` draw, in the inner backend's delivery order —
    the same per-delivery accounting the FlexRay ``loss_rate`` path
    has always used.  Clamp/loss counters are owned by the wrapper so
    ``statistics()`` merges cleanly with the inner backend's.
    """

    inner: Any
    loss: LossProcess
    lost: int = 0
    clamped: int = 0

    def event_submit(
        self, time: float, window_end: float, submissions: Sequence[Submission]
    ) -> None:
        self.inner.event_submit(time, window_end, submissions)

    def event_advance(self, time: float) -> List[Delivery]:
        out: List[Delivery] = []
        for delivery in self.inner.event_advance(time):
            if not delivery.lost and self.loss.sample():
                self.lost += 1
                delivery = Delivery(
                    name=delivery.name,
                    release_time=delivery.release_time,
                    delivery_time=delivery.delivery_time,
                    lost=True,
                )
            out.append(delivery)
        return out

    def sample_delays(
        self, time: float, period: float, submissions: Sequence[Submission]
    ) -> Dict[str, float]:
        # Mirrors the legacy FlexRay loss path exactly: the loss draw
        # happens per delivered message *before* the staleness check,
        # and a lost message yields inf for the interval (the kernel
        # keeps the previous input latched).
        self.inner.event_submit(time, time + period, submissions)
        delays: Dict[str, float] = {}
        for delivery in self.inner.event_advance(time + period):
            if delivery.lost:
                delays[delivery.name] = float("inf")
                continue
            if self.loss.sample():
                self.lost += 1
                delays[delivery.name] = float("inf")
                continue
            if delivery.release_time >= time - 1e-12:
                delays[delivery.name] = min(delivery.delivery_time - time, period)
        for sub in submissions:
            if sub.name not in delays:
                delays[sub.name] = period
                self.event_clamped()
        return delays

    def on_slot_change(self, slot: int, spec: Optional[FrameSpec]) -> None:
        self.inner.on_slot_change(slot, spec)

    def reset(self) -> None:
        self.inner.reset()
        self.loss.reset()
        self.lost = 0
        self.clamped = 0

    def statistics(self) -> Dict[str, Any]:
        stats = dict(self.inner.statistics())
        stats["lost"] = int(stats.get("lost", 0)) + self.lost
        stats["clamped"] = int(stats.get("clamped", 0)) + self.clamped
        return stats

    def capabilities(self) -> NetworkCapabilities:
        inner_caps = (
            self.inner.capabilities()
            if hasattr(self.inner, "capabilities")
            else NetworkCapabilities()
        )
        # Loss is seeded-random, so the composite is reproducible but
        # not deterministic, and no batch strategy can precompute it.
        return replace(
            inner_caps,
            deterministic=False,
            batch_strategy=None,
            loss=self.loss.kind,
        )


__all__ = [
    "GilbertElliottLoss",
    "IIDLoss",
    "LossProcess",
    "LossyNetwork",
]
